"""Client for the serving daemon's JSON-line socket protocol.

:class:`DaemonClient` mirrors the :class:`~repro.serve.service.TuningService`
request/response surface (``tune``/``map_device`` over the same dataclasses)
so callers can swap the in-process service for a running daemon without
touching request construction.  One client owns one connection and is safe
to share across threads (calls are serialised); open one client per thread
for closed-loop load generation.

The address selects the transport (``/path/to.sock`` or ``unix://`` for
``AF_UNIX``, ``tcp://HOST:PORT`` cross-host — see
:func:`repro.serve.protocol.parse_address`).  A broken connection (replica
restart, router failover) is dropped and transparently re-dialled on the
*next* request: the failing call raises so the caller decides whether the
lost request is safe to resend.

Retry policy: by default every call is single-attempt.  ``retries=N`` opts
into bounded retry with exponential backoff + jitter, covering exactly the
two failure modes that are always safe to retry — the *connect phase*
failing (the request never reached a server) and a structured
``overloaded`` shed (the server refused the request without running it).
A connection that breaks *mid-request* still raises immediately even with
retries enabled: only the caller knows whether the in-flight operation is
idempotent.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    ERR_OVERLOADED,
    LineChannel,
    connect_address,
    session_to_wire,
)
from repro.serve.service import (
    MapRequest,
    MapResponse,
    TuneRequest,
    TuneResponse,
)


class DaemonError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, code: str, message: str,
                 detail: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.detail = dict(detail or {})

    @property
    def overloaded(self) -> bool:
        """True when the daemon shed this request (back off and retry)."""
        return self.code == ERR_OVERLOADED


class DaemonClient:
    """Blocking request/response client over one daemon connection."""

    def __init__(self, address: str, timeout: float = 600.0,
                 connect_timeout: Optional[float] = None,
                 retries: int = 0, backoff_base: float = 0.05,
                 backoff_max: float = 2.0):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_base <= 0 or backoff_max <= 0:
            raise ValueError("backoff_base and backoff_max must be > 0")
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._lock = threading.Lock()
        self._channel: Optional[LineChannel] = None
        self._next_id = 0
        self._retry_rng = random.Random()

    @property
    def socket_path(self) -> str:
        """The daemon address (historical name from AF_UNIX-only days)."""
        return self.address

    # ------------------------------------------------------------------
    def _connect(self) -> LineChannel:
        if self._channel is None:
            self._channel = LineChannel(
                connect_address(self.address, timeout=self.connect_timeout))
        return self._channel

    def request(self, document: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one request; return its ``result``; raise on error replies.

        With ``retries`` > 0, connect-phase failures and ``overloaded``
        sheds are retried with exponential backoff + jitter (see the module
        docstring); everything else raises on the first occurrence.
        """
        attempt = 0
        while True:
            in_connect = True
            try:
                with self._lock:
                    channel = self._connect()
                    in_connect = False
                    request_id = f"c{self._next_id}"
                    self._next_id += 1
                    payload = dict(document)
                    payload["id"] = request_id
                    try:
                        channel.send(payload)
                        while True:
                            response = channel.recv(
                                self.timeout if timeout is None else timeout)
                            if response is None:
                                raise ConnectionError(
                                    "daemon closed the connection")
                            if response.get("id") == request_id:
                                break
                    except (OSError, ConnectionError):
                        self._reset_locked()
                        raise
            except (OSError, ConnectionError):
                if not in_connect or attempt >= self.retries:
                    raise
                self._sleep_backoff(attempt)
                attempt += 1
                continue
            if response.get("ok"):
                return response.get("result", {})
            error = response.get("error", {})
            exc = DaemonError(error.get("code", "internal"),
                              error.get("message", "unknown daemon error"),
                              error)
            if exc.overloaded and attempt < self.retries:
                self._sleep_backoff(attempt)
                attempt += 1
                continue
            raise exc

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        time.sleep(delay * (0.5 + 0.5 * self._retry_rng.random()))

    def _reset_locked(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    # ------------------------------------------------------------------
    # the TuningService-shaped surface
    # ------------------------------------------------------------------
    def tune(self, request: TuneRequest) -> TuneResponse:
        result = self.request({"op": "tune",
                               **dataclasses.asdict(request)})
        return TuneResponse(
            model=result["model"], version=result["version"],
            kernel=result["kernel"], scale=result["scale"],
            config_label=result["config_label"],
            num_threads=result["num_threads"], schedule=result["schedule"],
            chunk_size=result["chunk_size"],
            counters=dict(result["counters"]),
            latency_ms=result["latency_ms"])

    def map_device(self, request: MapRequest) -> MapResponse:
        result = self.request({"op": "map",
                               **dataclasses.asdict(request)})
        return MapResponse(
            model=result["model"], version=result["version"],
            kernel=result["kernel"], device=result["device"],
            label=result["label"], latency_ms=result["latency_ms"])

    def run_session(self, session):
        """Execute one :class:`SearchSession` on the daemon's worker pool."""
        from repro.serve.protocol import outcome_from_wire

        result = self.request({"op": "session",
                               "session": session_to_wire(session)})
        return outcome_from_wire(result)

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    # ------------------------------------------------------------------
    # online-operations surface (lifecycle-managed daemons)
    # ------------------------------------------------------------------
    def swap(self, model: str, version: Optional[int] = None,
             rollback: bool = False,
             track_latest: bool = False) -> Dict[str, Any]:
        """Hot-swap ``model`` to ``version`` (default: registry latest).

        ``rollback=True`` returns to the previously active version and
        pins it; an explicit ``version`` pins too unless ``track_latest``.
        Returns the daemon's route snapshot after the flip.
        """
        document: Dict[str, Any] = {"op": "swap", "model": model}
        if version is not None:
            document["version"] = int(version)
        if rollback:
            document["rollback"] = True
        if track_latest:
            document["track_latest"] = True
        return self.request(document)

    def rollback(self, model: str) -> Dict[str, Any]:
        return self.swap(model, rollback=True)

    def shadow_start(self, model: str, version: int, fraction: float = 0.2,
                     tolerance: float = 0.0,
                     min_compared: int = 0, promote_below: float = 0.0,
                     abort_above: float = 1.0) -> Dict[str, Any]:
        """Tee a fraction of ``model`` traffic to candidate ``version``."""
        return self.request({"op": "shadow", "action": "start",
                             "model": model, "version": int(version),
                             "fraction": fraction, "tolerance": tolerance,
                             "min_compared": min_compared,
                             "promote_below": promote_below,
                             "abort_above": abort_above})

    def shadow_stop(self, model: str) -> Dict[str, Any]:
        return self.request({"op": "shadow", "action": "stop",
                             "model": model})

    def shadow_status(self, model: str) -> Dict[str, Any]:
        return self.request({"op": "shadow", "action": "status",
                             "model": model})

    def ping(self, timeout: float = 5.0) -> bool:
        return bool(self.request({"op": "ping"},
                                 timeout=timeout).get("pong"))

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "drain": drain},
                            timeout=timeout)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._reset_locked()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
