"""A named, versioned store of model artifacts over a directory tree.

Layout::

    <root>/
        <name>/
            v0001/            # one artifact dir (manifest.json + arrays.npz)
            v0002/
            LATEST            # text file holding the newest version number

Publishing stages the artifact in a hidden temp directory and renames it into
place, so readers never observe a half-written version; the ``LATEST`` pointer
and the registry-wide ``GENERATION`` stamp are then updated via staged write +
``os.replace`` — every file a reader can open is either the old complete state
or the new complete state, never a truncated in-between.  All public methods
are safe to call from multiple threads of one process (guarded by a lock) and
from multiple processes (rename/replace are atomic on POSIX).

``GENERATION`` (at the registry root) is a monotone counter bumped by every
publish.  Watchers — the serving daemon's hot-swap loop in particular — poll
:meth:`ModelRegistry.generation` instead of rescanning the tree, and only
resolve per-model ``latest`` pointers when the stamp moves.

A publish may carry a :class:`~repro.serve.drift.DriftBaseline` sketched from
the training set; it is staged *inside* the version directory (subdir
``drift_baseline/``) before the rename, so model weights and their training
distribution appear atomically together.
"""

from __future__ import annotations

import dataclasses
import os
import re
import shutil
import threading
from typing import Any, Dict, List, Optional, Union

from repro.serve.artifacts import (
    KIND_DRIFT,
    ArtifactError,
    load_artifact,
    read_manifest,
    save_artifact,
    write_artifact_dir,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_LATEST_FILE = "LATEST"
_GENERATION_FILE = "GENERATION"
DRIFT_DIR = "drift_baseline"


def _write_atomic(path: str, text: str) -> None:
    """Stage + ``os.replace`` so readers never see a partial write."""
    staged = f"{path}.staged-{os.getpid()}-{threading.get_ident()}"
    with open(staged, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(staged, path)


@dataclasses.dataclass(frozen=True)
class ModelVersion:
    """One published (name, version) entry."""

    name: str
    version: int
    path: str
    kind: str
    metadata: Dict[str, Any]

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


class ModelRegistry:
    """Publish, enumerate and load versioned model artifacts."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _model_dir(self, name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid model name {name!r}")
        return os.path.join(self.root, name)

    @staticmethod
    def _version_dir(model_dir: str, version: int) -> str:
        return os.path.join(model_dir, f"v{version:04d}")

    # ------------------------------------------------------------------
    def publish(self, name: str, obj,
                metadata: Optional[Dict[str, Any]] = None,
                drift_baseline=None) -> ModelVersion:
        """Serialise ``obj`` as the next version of ``name``.

        ``drift_baseline`` (a :class:`~repro.serve.drift.DriftBaseline`)
        is staged inside the version directory before the atomic rename,
        so the weights and their training-distribution sketch publish as
        one unit.  The registry ``GENERATION`` stamp is bumped last —
        watchers that observe the new stamp are guaranteed to also see
        the complete version directory and ``LATEST`` pointer.
        """
        model_dir = self._model_dir(name)
        with self._lock:
            os.makedirs(model_dir, exist_ok=True)
            # next version comes from the directory scan, not the LATEST
            # pointer: a stale pointer must never make us collide with an
            # existing version directory
            version = (self.versions(name) or [0])[-1] + 1
            final_dir = self._version_dir(model_dir, version)
            staging = os.path.join(model_dir, f".staging-v{version:04d}")
            if os.path.exists(staging):
                shutil.rmtree(staging)
            try:
                save_artifact(staging, obj, metadata=metadata)
                if drift_baseline is not None:
                    config, arrays = drift_baseline.to_payload()
                    write_artifact_dir(os.path.join(staging, DRIFT_DIR),
                                       KIND_DRIFT, config, arrays)
                os.rename(staging, final_dir)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            _write_atomic(os.path.join(model_dir, _LATEST_FILE), str(version))
            self._bump_generation_locked()
        manifest = read_manifest(final_dir)
        return ModelVersion(name=name, version=version, path=final_dir,
                            kind=manifest["kind"],
                            metadata=manifest.get("metadata", {}))

    # ------------------------------------------------------------------
    def generation(self) -> int:
        """The registry-wide publish counter (0 before any publish).

        Monotone under this process's lock and atomic on disk; concurrent
        publishers from *separate* processes may coalesce a bump, which a
        watcher only needs the stamp to *move* to handle.
        """
        try:
            with open(os.path.join(self.root, _GENERATION_FILE), "r",
                      encoding="utf-8") as fh:
                return int(fh.read().strip())
        except (OSError, ValueError):
            return 0

    def _bump_generation_locked(self) -> None:
        _write_atomic(os.path.join(self.root, _GENERATION_FILE),
                      str(self.generation() + 1))

    # ------------------------------------------------------------------
    def list_models(self) -> List[str]:
        """Names that have at least one published version."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            if _NAME_RE.match(entry) and os.path.isdir(
                    os.path.join(self.root, entry)) and self.versions(entry):
                names.append(entry)
        return names

    def versions(self, name: str) -> List[int]:
        """Published version numbers of ``name``, ascending."""
        model_dir = self._model_dir(name)
        if not os.path.isdir(model_dir):
            return []
        found = []
        for entry in os.listdir(model_dir):
            match = _VERSION_RE.match(entry)
            if match and os.path.exists(os.path.join(model_dir, entry,
                                                     "manifest.json")):
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self, name: str) -> Optional[int]:
        """Newest published version of ``name`` (None if unpublished).

        Reads the O(1) ``LATEST`` pointer when it is present and still points
        at an existing version; falls back to scanning the version dirs (the
        pointer can go stale if versions are deleted by hand).
        """
        model_dir = self._model_dir(name)
        try:
            with open(os.path.join(model_dir, _LATEST_FILE), "r",
                      encoding="utf-8") as fh:
                version = int(fh.read().strip())
            if os.path.exists(os.path.join(self._version_dir(model_dir,
                                                             version),
                                           "manifest.json")):
                return version
        except (OSError, ValueError):
            pass
        versions = self.versions(name)
        return versions[-1] if versions else None

    # ------------------------------------------------------------------
    def _resolve(self, name: str, version: Optional[int]) -> str:
        if version is None:
            version = self.latest(name)
            if version is None:
                raise KeyError(f"model {name!r} has no published versions")
        path = self._version_dir(self._model_dir(name), int(version))
        if not os.path.isdir(path):
            raise KeyError(f"model {name!r} has no version {version}")
        return path

    def load(self, name: str, version: Optional[int] = None):
        """Deserialise a published version (default: the latest)."""
        return load_artifact(self._resolve(name, version))

    def load_drift_baseline(self, name: str,
                            version: Optional[int] = None):
        """The version's published drift sketch, or None if it has none."""
        path = os.path.join(self._resolve(name, version), DRIFT_DIR)
        if not os.path.exists(os.path.join(path, "manifest.json")):
            return None
        return load_artifact(path)

    def info(self, name: str, version: Optional[int] = None) -> Dict[str, Any]:
        """The stored manifest of a published version (no array I/O)."""
        path = self._resolve(name, version)
        manifest = read_manifest(path)
        manifest["path"] = path
        return manifest

    def describe(self) -> List[ModelVersion]:
        """One :class:`ModelVersion` per published version, for listings."""
        entries = []
        for name in self.list_models():
            for version in self.versions(name):
                path = self._version_dir(self._model_dir(name), version)
                try:
                    manifest = read_manifest(path)
                except ArtifactError:
                    continue
                entries.append(ModelVersion(
                    name=name, version=version, path=path,
                    kind=manifest["kind"],
                    metadata=manifest.get("metadata", {})))
        return entries
