"""Input-drift detection for served traffic.

The fig06/fig09 generalization experiments showed the MGA models degrade on
kernels outside the training distribution; in production nobody re-runs a
figure — the serving stack has to *notice*.  This module turns that one-shot
experiment into a standing check:

* :class:`DriftBaseline` — a compact sketch of the training distribution,
  built at publish time from the training dataset and persisted as its own
  artifact kind (``drift_baseline``) inside the published version directory,
  so every served version carries the distribution it was fitted on.  The
  sketch holds per-feature quantiles (deciles over ``[IR2Vec vector ‖ task
  extras]``), exact per-feature min/max, and the set of graph vocabulary
  token ids observed in training graphs.
* :class:`DriftMonitor` — the streaming, per-engine observer.  Every scored
  request contributes three signals: the fraction of features outside the
  training ``[min, max]`` envelope (*exactly zero* on in-distribution
  replay), the fraction of graph nodes carrying a token id never seen in
  training, and a decile-band total-variation distance of the observed
  feature stream against the training deciles (a gauge — inflated at tiny
  sample counts).  A request's drift score is ``max(oob, unseen_tokens)``
  and the request is *flagged* when the score reaches the baseline's
  threshold.

Monitors live inside :class:`~repro.serve.engine.InferenceEngine`; the
daemon aggregates their summaries per route and surfaces them in ``stats``
(and, via the router, per fleet).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.vocab import GraphVocabulary

#: quantile fractions of the sketch: deciles, so 10 equal-mass bands
FRACTIONS: Tuple[float, ...] = tuple(np.linspace(0.0, 1.0, 11))
#: default flag threshold on a request's drift score
DEFAULT_THRESHOLD = 0.05

TASK_TUNE = "tune"
TASK_MAP = "map"


def token_ids_from_graph(graph, vocab_size: int) -> np.ndarray:
    """Recover integer token ids from one-hot node features.

    The graph vocabulary is closed (opcodes + dtypes + UNK), and the first
    ``vocab_size`` columns of ``node_features`` are the one-hot token id —
    argmax inverts the encoding without re-parsing any IR.
    """
    features = np.asarray(graph.node_features)
    return np.argmax(features[:, :vocab_size], axis=1)


def tune_feature_vector(vector: np.ndarray, counters: Dict[str, float],
                        counter_names: Sequence[str]) -> np.ndarray:
    """Serving-time feature row for the tuning task: vector ‖ counters."""
    extras = [float(counters.get(name, 0.0)) for name in counter_names]
    return np.concatenate([np.asarray(vector, dtype=np.float64),
                           np.asarray(extras, dtype=np.float64)])


def map_feature_vector(vector: np.ndarray, transfer_bytes: float,
                       wgsize: float) -> np.ndarray:
    """Serving-time feature row for device mapping: vector ‖ log extras."""
    extras = [np.log1p(float(transfer_bytes)), np.log1p(float(wgsize))]
    return np.concatenate([np.asarray(vector, dtype=np.float64),
                           np.asarray(extras, dtype=np.float64)])


@dataclasses.dataclass
class DriftBaseline:
    """Training-distribution sketch persisted alongside a published model."""

    task: str                         # "tune" | "map"
    quantiles: np.ndarray             # [len(FRACTIONS), feature_dim]
    token_ids: frozenset              # vocab token ids seen in training
    vocab_size: int
    counter_names: Tuple[str, ...]    # tune extras ordering ("" for map)
    n_samples: int
    threshold: float = DEFAULT_THRESHOLD

    @property
    def feature_dim(self) -> int:
        return int(self.quantiles.shape[1])

    @property
    def lo(self) -> np.ndarray:
        return self.quantiles[0]

    @property
    def hi(self) -> np.ndarray:
        return self.quantiles[-1]

    # ------------------------------------------------------------------
    @classmethod
    def from_features(cls, features: np.ndarray,
                      token_id_arrays: Iterable[np.ndarray], *,
                      task: str, counter_names: Sequence[str] = (),
                      vocab_size: Optional[int] = None,
                      threshold: float = DEFAULT_THRESHOLD) -> "DriftBaseline":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError("features must be a non-empty 2-D matrix")
        tokens: set = set()
        for ids in token_id_arrays:
            tokens.update(int(t) for t in np.asarray(ids).ravel())
        return cls(
            task=task,
            quantiles=np.quantile(features, FRACTIONS, axis=0),
            token_ids=frozenset(tokens),
            vocab_size=int(vocab_size if vocab_size is not None
                           else GraphVocabulary().size),
            counter_names=tuple(counter_names),
            n_samples=int(features.shape[0]),
            threshold=float(threshold),
        )

    # ------------------------------------------------------------------
    # the artifact payload (kind "drift_baseline")
    # ------------------------------------------------------------------
    def to_payload(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        config = {
            "task": self.task,
            "fractions": [float(f) for f in FRACTIONS],
            "vocab_size": self.vocab_size,
            "counter_names": list(self.counter_names),
            "n_samples": self.n_samples,
            "threshold": self.threshold,
            "feature_dim": self.feature_dim,
        }
        arrays = {
            "drift.quantiles": np.asarray(self.quantiles, dtype=np.float64),
            "drift.token_ids": np.asarray(sorted(self.token_ids),
                                          dtype=np.int64),
        }
        return config, arrays

    @classmethod
    def from_payload(cls, config: Dict[str, Any],
                     arrays: Dict[str, np.ndarray]) -> "DriftBaseline":
        return cls(
            task=str(config["task"]),
            quantiles=np.asarray(arrays["drift.quantiles"], dtype=np.float64),
            token_ids=frozenset(int(t) for t in arrays["drift.token_ids"]),
            vocab_size=int(config["vocab_size"]),
            counter_names=tuple(config.get("counter_names", [])),
            n_samples=int(config["n_samples"]),
            threshold=float(config.get("threshold", DEFAULT_THRESHOLD)),
        )


# ----------------------------------------------------------------------
# baseline builders from the training datasets
# ----------------------------------------------------------------------
def baseline_from_openmp(dataset,
                         threshold: float = DEFAULT_THRESHOLD) -> DriftBaseline:
    """Sketch an :class:`~repro.datasets.openmp.OpenMPTuningDataset`."""
    counter_names = tuple(dataset.counter_names)
    rows = [tune_feature_vector(s.vector, s.counters, counter_names)
            for s in dataset.samples]
    vocab_size = GraphVocabulary().size
    tokens = [token_ids_from_graph(s.graph, vocab_size)
              for s in dataset.samples]
    return DriftBaseline.from_features(
        np.stack(rows), tokens, task=TASK_TUNE,
        counter_names=counter_names, vocab_size=vocab_size,
        threshold=threshold)


def baseline_from_devmap(dataset,
                         threshold: float = DEFAULT_THRESHOLD) -> DriftBaseline:
    """Sketch a :class:`~repro.datasets.devmap.DevMapDataset`."""
    rows = [map_feature_vector(s.vector, s.transfer_bytes, s.wgsize)
            for s in dataset.samples]
    vocab_size = GraphVocabulary().size
    tokens = [token_ids_from_graph(s.graph, vocab_size)
              for s in dataset.samples]
    return DriftBaseline.from_features(
        np.stack(rows), tokens, task=TASK_MAP,
        vocab_size=vocab_size, threshold=threshold)


def baseline_for(obj, dataset,
                 threshold: float = DEFAULT_THRESHOLD) -> DriftBaseline:
    """Build the right-task baseline for a tuner/mapper from its dataset."""
    from repro.core.tuner import DeviceMapper

    if isinstance(obj, DeviceMapper):
        return baseline_from_devmap(dataset, threshold=threshold)
    return baseline_from_openmp(dataset, threshold=threshold)


# ----------------------------------------------------------------------
# the streaming monitor
# ----------------------------------------------------------------------
class DriftMonitor:
    """Streaming drift scorer over one engine's served requests.

    Cheap per request (one comparison pass over ~40 features plus an argmax
    over the graph's one-hot token block) and cumulative: :meth:`summary`
    returns monotone counters the daemon can delta-accumulate per route even
    across worker restarts.
    """

    def __init__(self, baseline: DriftBaseline):
        self.baseline = baseline
        dim = baseline.feature_dim
        span = baseline.hi - baseline.lo
        # float-noise pad only: exact training points must never count OOB,
        # while anything meaningfully outside the envelope still does
        self._pad = 1e-9 * (1.0 + np.abs(baseline.lo)
                            + np.abs(baseline.hi) + span)
        self._edges = baseline.quantiles[1:-1]        # [bands - 1, dim]
        self._bands = np.zeros((self._edges.shape[0] + 1, dim), dtype=np.int64)
        self._lock = threading.Lock()
        self._count = 0
        self._flagged = 0
        self._score_sum = 0.0
        self._oob_sum = 0.0
        self._token_sum = 0.0
        self._last_score = 0.0

    # ------------------------------------------------------------------
    def observe(self, feature_row: np.ndarray,
                graph=None) -> Dict[str, Any]:
        """Score one served request; returns the per-request signals."""
        row = np.asarray(feature_row, dtype=np.float64)
        baseline = self.baseline
        oob = np.logical_or(row < baseline.lo - self._pad,
                            row > baseline.hi + self._pad)
        oob_frac = float(np.mean(oob))
        unseen_frac = 0.0
        if graph is not None:
            ids = token_ids_from_graph(graph, baseline.vocab_size)
            if ids.size:
                unseen = sum(1 for t in ids if int(t) not in baseline.token_ids)
                unseen_frac = unseen / float(ids.size)
        score = max(oob_frac, unseen_frac)
        flagged = score >= baseline.threshold
        bands = (row[None, :] >= self._edges).sum(axis=0)
        with self._lock:
            self._bands[bands, np.arange(row.size)] += 1
            self._count += 1
            self._flagged += int(flagged)
            self._score_sum += score
            self._oob_sum += oob_frac
            self._token_sum += unseen_frac
            self._last_score = score
        return {"score": score, "oob": oob_frac,
                "unseen_tokens": unseen_frac, "flagged": flagged}

    # ------------------------------------------------------------------
    def band_tvd(self) -> float:
        """Mean per-feature TVD of observed deciles vs the training 0.1 mass.

        A distributional gauge, not a counter: inflated when few requests
        have been scored (one observation concentrates all mass in one
        band), so read it only at meaningful sample counts.
        """
        with self._lock:
            count = self._count
            bands = self._bands.copy()
        if count == 0:
            return 0.0
        observed = bands / float(count)
        target = 1.0 / bands.shape[0]
        return float(np.mean(0.5 * np.sum(np.abs(observed - target), axis=0)))

    def summary(self) -> Dict[str, Any]:
        """Cumulative counters plus gauges, for route-level aggregation."""
        with self._lock:
            count = self._count
            summary = {
                "count": count,
                "flagged": self._flagged,
                "score_sum": self._score_sum,
                "oob_sum": self._oob_sum,
                "token_sum": self._token_sum,
                "last_score": self._last_score,
                "threshold": self.baseline.threshold,
            }
        summary["band_tvd"] = self.band_tvd()
        summary["mean_score"] = (summary["score_sum"] / count) if count else 0.0
        return summary


def merge_route_drift(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-worker cumulative summaries into one route-level view."""
    count = sum(int(s.get("count", 0)) for s in snapshots)
    flagged = sum(int(s.get("flagged", 0)) for s in snapshots)
    score_sum = sum(float(s.get("score_sum", 0.0)) for s in snapshots)
    oob_sum = sum(float(s.get("oob_sum", 0.0)) for s in snapshots)
    token_sum = sum(float(s.get("token_sum", 0.0)) for s in snapshots)
    gauges = [s for s in snapshots if int(s.get("count", 0))]
    threshold = max((float(s.get("threshold", DEFAULT_THRESHOLD))
                     for s in snapshots), default=DEFAULT_THRESHOLD)
    mean_score = (score_sum / count) if count else 0.0
    return {
        "count": count,
        "flagged": flagged,
        "flagged_rate": (flagged / count) if count else 0.0,
        "mean_score": mean_score,
        "mean_oob": (oob_sum / count) if count else 0.0,
        "mean_unseen_tokens": (token_sum / count) if count else 0.0,
        "band_tvd": (float(np.mean([s.get("band_tvd", 0.0) for s in gauges]))
                     if gauges else 0.0),
        "threshold": threshold,
        "drifting": count > 0 and mean_score >= threshold,
    }
