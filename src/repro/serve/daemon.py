"""Concurrent multi-worker serving daemon with deadline-aware batching.

:class:`ServeDaemon` is the socket-served, multi-process big sibling of the
in-process :class:`~repro.serve.engine.InferenceEngine`:

* a **front-end** accepts JSON-line requests over a stream socket — a local
  ``AF_UNIX`` path or ``tcp://HOST:PORT`` for cross-host replicas, selected
  by the address scheme (:func:`~repro.serve.protocol.parse_address`) —
  many connections, pipelined requests, out-of-order responses;
* an **async dispatcher** forms dynamic micro-batches per ``(model,
  version)`` route under a configurable latency budget: a batch flushes when
  it reaches ``max_batch`` requests *or* its oldest request has waited
  ``deadline_ms``, whichever comes first;
* a **pool of worker processes**, each holding a warm
  :class:`~repro.serve.registry.ModelRegistry` model behind its own
  :class:`~repro.serve.engine.InferenceEngine`, executes the batches.

The request queue is bounded: when ``max_queue`` requests are already
waiting, new work is *shed* with a structured ``overloaded`` error instead
of growing the queue without bound (the client backs off; latency stays
bounded).  A monitor thread heals the pool — if a worker dies mid-batch its
requests are retried once on another worker (the deliberately-crashing
debug op is failed, not retried) and a replacement process is spawned.
``shutdown`` drains: queued and in-flight work completes, workers stop
cleanly, then the socket disappears.

Determinism: a worker answers ``tune``/``map`` through the same
``registry.load`` → ``InferenceEngine`` path as in-process serving, so
daemon predictions are byte-identical to :class:`InferenceEngine` over the
same published artifact.

Online operations (:mod:`repro.serve.lifecycle`): with a registry the
daemon runs a **watcher** thread that polls the registry generation and
hot-swaps routes onto newly published versions with zero drain — the
dispatcher stamps every batch with the route's resolved version under the
dispatch lock, so a flip lands exactly between micro-batches and no batch
mixes versions.  ``swap`` pins/rolls back a route; ``shadow`` tees a
fraction of answered live traffic to a candidate version through a
separate low-priority queue that only otherwise-idle workers drain
(never ahead of live work), diffing its answers against the delivered
ones.  Workers stream cumulative per-engine drift scores back with every
batch; ``stats`` reports swap counters, shadow disagreement and per-route
drift.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve import faults
from repro.serve.lifecycle import (
    DriftAggregator,
    LifecycleManager,
    ShadowPolicy,
    SwapError,
)
from repro.serve.protocol import (
    ADMIN_OPS,
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_NO_REGISTRY,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_WORKER_CRASHED,
    LineChannel,
    ProtocolError,
    connect_address,
    create_listener,
    error_response,
    format_address,
    ok_response,
    parse_address,
    percentile,
    validate_request,
)

#: per-request retry budget after a worker crash
MAX_ATTEMPTS = 2

_ROUTE_SESSION = ("session",)
_ROUTE_DEBUG = ("debug",)


def route_label(route: tuple) -> str:
    """A stable human/JSON-friendly name of a dispatch route tuple."""
    if route and route[0] == "model":
        _, model, version = route
        return f"{model}@{version if version is not None else 'latest'}"
    if route and route[0] == "shadow":
        _, model, version = route
        return f"shadow:{model}@{version}"
    return route[0] if route else "?"


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _execute_tune_map(service, requests: List[Dict[str, Any]]
                      ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Answer a batch of tune/map requests through one warm engine each.

    All requests are *submitted* before any result is awaited, so
    co-batched requests for the same model coalesce into single
    ``MGAModel.predict`` calls inside the engine — the daemon's batch is
    the engine's batch.  Returns the results plus cumulative per-engine
    drift summaries (keyed ``model@version``) for the daemon's
    aggregator.
    """
    from repro.kernels import registry as kernel_registry
    from repro.serve.service import (
        map_response_fields,
        require_mapper,
        require_tuner,
        resolve_tune_scale,
        tune_response_fields,
    )

    submitted: List[Tuple[Optional[Any], Optional[Dict], Optional[str]]] = []
    engines_used: Dict[str, Any] = {}
    for request in requests:
        try:
            engine, version = service.engine(request["model"],
                                             request.get("version"))
            engines_used[f"{request['model']}@{version}"] = engine
            spec = kernel_registry.get_kernel(request["kernel"])
            if request["op"] == "tune":
                require_tuner(engine.predictor, request["model"])
                scale = resolve_tune_scale(spec, request.get("scale"),
                                           request.get("target_bytes"))
                pending = engine.submit_tune(spec, scale)
                meta = {"op": "tune", "model": request["model"],
                        "version": version, "kernel": request["kernel"],
                        "scale": scale}
            else:
                require_mapper(engine.predictor, request["model"])
                pending = engine.submit_map(spec,
                                            float(request["transfer_bytes"]),
                                            int(request["wgsize"]))
                meta = {"op": "map", "model": request["model"],
                        "version": version, "kernel": request["kernel"]}
            submitted.append((pending, meta, None))
        except Exception as exc:
            submitted.append((None, None,
                              f"{type(exc).__name__}: {exc}"))
    results = []
    for pending, meta, failure in submitted:
        if failure is not None:
            results.append({"ok": False,
                            "error": {"code": ERR_BAD_REQUEST,
                                      "message": failure}})
            continue
        try:
            value = pending.result(timeout=600.0)
            if meta["op"] == "tune":
                config, counters = value
                result = tune_response_fields(
                    meta["model"], meta["version"], meta["kernel"],
                    meta["scale"], config, counters)
            else:
                result = map_response_fields(meta["model"], meta["version"],
                                             meta["kernel"], int(value))
            results.append({"ok": True, "result": result})
        except Exception as exc:
            results.append({"ok": False,
                            "error": {"code": ERR_INTERNAL,
                                      "message": f"{type(exc).__name__}: "
                                                 f"{exc}"}})
    drift: Dict[str, Any] = {}
    for label, engine in engines_used.items():
        summary = engine.drift_summary()
        if summary is not None:
            drift[label] = summary
    return results, ({"drift": drift} if drift else {})


def _execute_one(service, request: Dict[str, Any],
                 debug_ops: bool) -> Dict[str, Any]:
    from repro.serve.protocol import (
        outcome_to_wire,
        session_from_wire,
    )
    from repro.tuners.campaign import run_search_session

    op = request["op"]
    if op == "session":
        outcome = run_search_session(session_from_wire(request["session"]))
        return {"ok": True, "result": outcome_to_wire(outcome)}
    if op == "_sleep":
        if not debug_ops:
            raise ValueError("debug ops are disabled (start the daemon "
                             "with --debug-ops)")
        seconds = float(request.get("seconds", 0.1))
        time.sleep(seconds)
        return {"ok": True, "result": {"slept": seconds}}
    if op == "_crash":
        if not debug_ops:
            raise ValueError("debug ops are disabled (start the daemon "
                             "with --debug-ops)")
        os._exit(17)
    raise ValueError(f"unroutable op {op!r}")


def _run_control(service, worker_id: int, control_id: int,
                 command: Dict[str, Any], result_queue) -> None:
    """Execute one warm/retire control command and ack it."""
    try:
        if command["cmd"] == "warm":
            version = service.warm(command["model"],
                                   command.get("version"))
            detail = f"warmed {command['model']}@{version}"
        elif command["cmd"] == "retire":
            closed = service.retire(command["model"], command["version"])
            detail = ("retired" if closed else "not loaded")
        else:
            raise ValueError(f"unknown control cmd {command.get('cmd')!r}")
        result_queue.put(("control_done", worker_id, control_id,
                          True, detail))
    except Exception as exc:
        result_queue.put(("control_done", worker_id, control_id, False,
                          f"{type(exc).__name__}: {exc}"))


def _worker_main(worker_id: int, registry_root: Optional[str],
                 engine_opts: Dict[str, Any], preload: List[str],
                 debug_ops: bool, task_queue, result_queue) -> None:
    """One worker: a warm per-model engine cache behind a task queue."""
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import TuningService

    # chaos only: an REPRO_FAULTS plan with kill_after SIGKILLs this worker
    # after that many answered tune/map requests — after the answers are
    # computed but before they are submitted, the nastiest instant
    faults.install(faults.FaultPlan.from_env(), seed_offset=worker_id)
    registry = ModelRegistry(registry_root) if registry_root else None
    service = TuningService(registry, **engine_opts)
    try:
        for entry in preload:
            name, _, version = entry.partition("@")
            service.engine(name, int(version) if version else None)
    except Exception as exc:
        result_queue.put(("failed", worker_id,
                          f"preload failed: {type(exc).__name__}: {exc}"))
        return
    result_queue.put(("ready", worker_id, os.getpid()))
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        if message[0] == "control":
            _, control_id, command = message
            if command.get("cmd") == "warm":
                # warm-load off the batch path: live batches keep flowing
                # on this worker while the candidate engine loads
                threading.Thread(
                    target=_run_control,
                    args=(service, worker_id, control_id, command,
                          result_queue),
                    name=f"repro-worker-warm-{control_id}",
                    daemon=True).start()
            else:
                _run_control(service, worker_id, control_id, command,
                             result_queue)
            continue
        _, batch_id, requests = message
        results: List[Dict[str, Any]] = []
        extras: Dict[str, Any] = {}
        tune_map: List[Tuple[int, Dict[str, Any]]] = []
        for position, request in enumerate(requests):
            if request["op"] in ("tune", "map"):
                if registry is None:
                    results.append(
                        {"ok": False,
                         "error": {"code": ERR_NO_REGISTRY,
                                   "message": "daemon was started without "
                                              "--root; tune/map need a "
                                              "model registry"}})
                else:
                    tune_map.append((position, request))
                    results.append({})       # placeholder, filled below
            else:
                try:
                    results.append(_execute_one(service, request, debug_ops))
                except Exception as exc:
                    results.append(
                        {"ok": False,
                         "error": {"code": ERR_BAD_REQUEST,
                                   "message": f"{type(exc).__name__}: "
                                              f"{exc}"}})
        if tune_map:
            answers, extras = _execute_tune_map(
                service, [request for _, request in tune_map])
            for (position, _), answer in zip(tune_map, answers):
                results[position] = answer
        injector = faults.active()
        if injector is not None:
            for _ in tune_map:
                injector.evaluated()
        result_queue.put(("done", worker_id, batch_id, results, extras))
    service.close()


# ----------------------------------------------------------------------
# daemon-side request bookkeeping
# ----------------------------------------------------------------------
class _PendingRequest:
    __slots__ = ("request_id", "op", "payload", "reply", "enqueued_at",
                 "attempts", "route")

    def __init__(self, request_id, op, payload, reply, route):
        self.request_id = request_id
        self.op = op
        self.payload = payload
        self.reply = reply
        self.enqueued_at = time.perf_counter()
        self.attempts = 0
        self.route = route


class _Worker:
    """Daemon-side handle of one worker process."""

    def __init__(self, worker_id: int, process, task_queue):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.busy_with: Optional[int] = None      # batch id

    def alive(self) -> bool:
        return self.process.is_alive()


class ServeDaemon:
    """Socket front-end + dispatcher + healing worker pool (see module doc)."""

    def __init__(self, address: str, registry_root: Optional[str] = None,
                 workers: int = 2, max_batch: int = 16,
                 deadline_ms: float = 10.0, max_queue: int = 64,
                 engine_max_wait_ms: float = 2.0, cache_size: int = 512,
                 preload: Optional[List[str]] = None, debug_ops: bool = False,
                 mp_start_method: Optional[str] = None,
                 watch_interval_s: float = 0.5):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        # an AF_UNIX path (historical default) or tcp://HOST:PORT; the
        # resolved form (ephemeral TCP ports filled in) lands here on start
        self.scheme, self._location = parse_address(address)
        self.address = format_address(self.scheme, self._location)
        self.registry_root = (os.fspath(registry_root)
                              if registry_root is not None else None)
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.deadline_s = float(deadline_ms) / 1e3
        self.max_queue = int(max_queue)
        self.engine_opts = {"max_batch_size": int(max_batch),
                            "max_wait_ms": float(engine_max_wait_ms),
                            "cache_size": int(cache_size)}
        self.preload = list(preload or [])
        self.debug_ops = bool(debug_ops)
        #: registry-watch poll period; 0 disables the watcher (routes then
        #: only move on explicit ``swap`` ops)
        self.watch_interval_s = float(watch_interval_s)
        self._mp = (multiprocessing.get_context(mp_start_method)
                    if mp_start_method else multiprocessing)

        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._routes: "collections.OrderedDict[tuple, collections.deque]" = \
            collections.OrderedDict()
        self._queued = 0
        self._inflight: Dict[int, List[_PendingRequest]] = {}
        self._pool: Dict[int, _Worker] = {}
        self._next_batch_id = 0
        self._next_worker_id = 0
        self._result_queue = None
        self._listener: Optional[socket.socket] = None
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running = False
        self._draining = False
        self._started_at = 0.0
        self._stop_event = threading.Event()

        # online operations: lifecycle manager over this registry, shadow
        # queueing, worker control-message plumbing, drift aggregation
        self._registry = None
        self._lifecycle: Optional[LifecycleManager] = None
        if self.registry_root is not None:
            from repro.serve.registry import ModelRegistry
            self._registry = ModelRegistry(self.registry_root)
            self._lifecycle = LifecycleManager(
                self._registry, self._warm_workers, self._retire_workers)
        self._warm_set: set = set()          # "model@version" kept warm
        self._shadow_routes: "collections.OrderedDict[tuple, collections.deque]" = \
            collections.OrderedDict()
        self._shadow_queued = 0
        self._shadow_batch_ids: set = set()
        self._shadow_contention = 0
        self._contention_seen: set = set()
        self._shadow_batch_count = 0
        self._control_lock = threading.Lock()
        self._control_waiters: Dict[int, Dict[str, Any]] = {}
        self._next_control_id = 0
        self._drift = DriftAggregator()

        self._stats_lock = threading.Lock()
        self._received = 0
        self._completed = 0
        self._errors = 0
        self._shed = 0
        self._retried = 0
        self._worker_restarts = 0
        self._batch_histogram: Dict[int, int] = {}
        self._latencies: "collections.deque[float]" = \
            collections.deque(maxlen=4096)
        self._per_model: Dict[str, int] = {}

    @property
    def socket_path(self) -> str:
        """The serving address (historical name from AF_UNIX-only days)."""
        return self.address

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 120.0) -> "ServeDaemon":
        """Bind the socket, spawn + warm the workers, start the dispatcher."""
        if self._running:
            raise RuntimeError("daemon already started")
        if self.scheme == "unix" and os.path.exists(self._location):
            # a crashed daemon leaves a dead socket file behind — but a
            # *live* one must not be hijacked: probe before unlinking
            try:
                probe = connect_address(self.address, timeout=1.0)
            except OSError:
                os.unlink(self._location)        # stale: nobody listening
            else:
                probe.close()
                raise RuntimeError(
                    f"another daemon is already serving {self.address}")
        # bind before spawning: a refused bind must not leak worker processes
        listener, self.address = create_listener(self.address)
        self._listener = listener

        self._result_queue = self._mp.Queue()
        try:
            with self._lock:
                for _ in range(self.workers):
                    self._spawn_worker_locked()
            self._await_workers(ready_timeout)
        except BaseException:
            for worker in self._pool.values():
                worker.process.terminate()
            listener.close()
            if self.scheme == "unix":
                os.unlink(self._location)
            raise
        self._running = True
        self._started_at = time.perf_counter()
        loops = [(self._accept_loop, "accept"),
                 (self._dispatch_loop, "dispatch"),
                 (self._collect_loop, "collect"),
                 (self._monitor_loop, "monitor")]
        if self._lifecycle is not None and self.watch_interval_s > 0:
            loops.append((self._watch_loop, "watch"))
        for target, name in loops:
            thread = threading.Thread(target=target,
                                      name=f"repro-daemon-{name}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def _spawn_worker_locked(self) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._mp.Queue()
        # healed workers come up warm on every version the lifecycle has
        # swapped in, not just the configured preload — a route must heal
        # onto the version it currently serves
        preload = sorted(set(self.preload) | self._warm_set)
        process = self._mp.Process(
            target=_worker_main,
            args=(worker_id, self.registry_root, self.engine_opts,
                  preload, self.debug_ops, task_queue,
                  self._result_queue),
            name=f"repro-serve-worker-{worker_id}", daemon=True)
        process.start()
        worker = _Worker(worker_id, process, task_queue)
        self._pool[worker_id] = worker
        return worker

    def _await_workers(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError("workers did not come up in time")
            try:
                message = self._result_queue.get(timeout=remaining)
            except Exception as exc:
                raise RuntimeError("workers did not come up in time") from exc
            if message[0] == "ready":
                ready += 1
            elif message[0] == "failed":
                raise RuntimeError(f"worker {message[1]} failed to start: "
                                   f"{message[2]}")

    # ------------------------------------------------------------------
    # worker control channel: warm/retire broadcasts for hot-swap
    # ------------------------------------------------------------------
    def _broadcast_control(self, command: Dict[str, Any],
                           timeout: float = 120.0) -> Dict[int, tuple]:
        """Send one control command to every live worker; gather the acks.

        Returns ``{worker_id: (ok, detail)}``.  Workers that die while the
        command is outstanding are recorded as failed instead of hanging
        the broadcast — the monitor replaces them, and replacements come
        up warm via the preload set.
        """
        with self._lock:
            targets = {worker_id: worker
                       for worker_id, worker in self._pool.items()
                       if worker.alive()}
        if not targets:
            raise RuntimeError("no live workers to control")
        with self._control_lock:
            control_id = self._next_control_id
            self._next_control_id += 1
            waiter = {"pending": set(targets), "results": {},
                      "event": threading.Event()}
            self._control_waiters[control_id] = waiter
        try:
            for worker_id, worker in targets.items():
                try:
                    worker.task_queue.put(("control", control_id, command))
                except (OSError, ValueError):
                    self._control_ack(worker_id, control_id, False,
                                      "control channel closed")
            deadline = time.monotonic() + timeout
            while not waiter["event"].wait(0.2):
                with self._lock:
                    dead = [worker_id for worker_id in list(waiter["pending"])
                            if worker_id not in self._pool
                            or not self._pool[worker_id].alive()]
                for worker_id in dead:
                    self._control_ack(worker_id, control_id, False,
                                      "worker died during control op")
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"control op {command.get('cmd')!r} timed out "
                        f"waiting for workers {sorted(waiter['pending'])}")
        finally:
            with self._control_lock:
                self._control_waiters.pop(control_id, None)
        return dict(waiter["results"])

    def _control_ack(self, worker_id: int, control_id: int, ok: bool,
                     detail: str) -> None:
        with self._control_lock:
            waiter = self._control_waiters.get(control_id)
            if waiter is None or worker_id not in waiter["pending"]:
                return
            waiter["pending"].discard(worker_id)
            waiter["results"][worker_id] = (ok, detail)
            if not waiter["pending"]:
                waiter["event"].set()

    def _warm_workers(self, model: str, version: int) -> None:
        """Warm-load one version on every worker (all must succeed)."""
        results = self._broadcast_control(
            {"cmd": "warm", "model": model, "version": int(version)})
        failures = {worker_id: detail
                    for worker_id, (ok, detail) in results.items() if not ok}
        if failures:
            raise RuntimeError(f"warm failed on workers {failures}")
        with self._lock:
            self._warm_set.add(f"{model}@{int(version)}")

    def _retire_workers(self, model: str, version: int) -> None:
        """Close one version's engines everywhere (best effort)."""
        with self._lock:
            self._warm_set.discard(f"{model}@{int(version)}")
        try:
            self._broadcast_control(
                {"cmd": "retire", "model": model, "version": int(version)},
                timeout=30.0)
        except RuntimeError:
            pass          # dead workers retire by dying

    def _watch_loop(self) -> None:
        """Poll the registry generation; hot-swap unpinned stale routes."""
        while not self._stop_event.wait(self.watch_interval_s):
            if not self._running or self._draining:
                return
            try:
                self._lifecycle.check_registry()
            except Exception:
                continue      # registry hiccup: retry next tick

    def shutdown(self, drain: bool = True, timeout: float = 120.0,
                 _exempt_conn: Optional[socket.socket] = None) -> None:
        """Stop the daemon; with ``drain`` outstanding work completes first."""
        self._stop_event.set()
        with self._lock:
            if not self._running:
                return
            self._draining = True
            if drain:
                deadline = time.monotonic() + timeout
                while (self._queued or self._inflight) and \
                        time.monotonic() < deadline:
                    self._work_available.notify_all()
                    self._drained.wait(timeout=0.1)
            self._running = False
            pool = list(self._pool.values())
            self._work_available.notify_all()
        for worker in pool:
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for worker in pool:
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        if self._listener is not None:
            # wake the accept thread before closing: a close() alone leaves
            # it blocked in accept(), and the in-kernel reference it holds
            # keeps the port in LISTEN after we exit (EADDRINUSE on restart)
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self.scheme == "unix" and os.path.exists(self._location):
            try:
                os.unlink(self._location)
            except OSError:
                pass
        # fail anything still queued (drain=False or drain timeout)
        with self._lock:
            leftovers = [request for pending in self._routes.values()
                         for request in pending]
            leftovers.extend(request
                             for pending in self._shadow_routes.values()
                             for request in pending)
            for batch in self._inflight.values():
                leftovers.extend(batch)
            self._routes.clear()
            self._shadow_routes.clear()
            self._inflight.clear()
            self._queued = 0
            self._shadow_queued = 0
        for request in leftovers:
            request.reply(error_response(request.request_id,
                                         ERR_SHUTTING_DOWN,
                                         "daemon stopped before this "
                                         "request completed"))
        # hang up on connected clients so they observe the stop instead of
        # talking to a zombie; the connection that requested the shutdown
        # is exempted so its ack can still be delivered
        with self._conns_lock:
            open_conns = [conn for conn in self._conns
                          if conn is not _exempt_conn]
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # front-end: connections and admission control
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if self.scheme == "tcp":
                try:
                    conn.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                    # let a restarted daemon rebind this port while old
                    # client connections are still draining
                    conn.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEADDR, 1)
                except OSError:
                    pass
            thread = threading.Thread(target=self._connection_loop,
                                      args=(conn,),
                                      name="repro-daemon-conn", daemon=True)
            thread.start()

    def _connection_loop(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        write_lock = threading.Lock()
        with self._conns_lock:
            self._conns.add(conn)

        def reply(document: Dict[str, Any]) -> None:
            try:
                with write_lock:
                    channel.send(document)
            except OSError:
                pass                  # client went away; nothing to tell it

        try:
            while True:
                try:
                    document = channel.recv()
                except ProtocolError as exc:
                    reply(error_response(None, ERR_BAD_REQUEST, str(exc)))
                    return
                except OSError:
                    return
                if document is None:
                    return
                self._handle_request(document, reply, conn)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            channel.close()

    def _handle_request(self, document: Dict[str, Any], reply,
                        conn: Optional[socket.socket] = None) -> None:
        try:
            request_id, op = validate_request(document)
        except ProtocolError as exc:
            reply(error_response(document.get("id"), ERR_BAD_REQUEST,
                                 str(exc)))
            with self._stats_lock:
                self._received += 1
                self._errors += 1
            return
        with self._stats_lock:
            self._received += 1
        if op == "ping":
            reply(ok_response(request_id, {"pong": True}))
            return
        if op == "stats":
            reply(ok_response(request_id, self.stats()))
            return
        if op == "shutdown":
            # drain on a helper thread so this connection's reader keeps
            # the reply path alive until outstanding work has finished
            def drain_and_ack():
                self.shutdown(drain=bool(document.get("drain", True)),
                              _exempt_conn=conn)
                reply(ok_response(request_id, {"stopped": True}))
            threading.Thread(target=drain_and_ack,
                             name="repro-daemon-shutdown",
                             daemon=True).start()
            return
        if op in ADMIN_OPS:
            # swap/shadow run synchronously on this connection's thread:
            # the warm broadcast completes via the collector thread, and
            # the caller gets a deterministic done/failed answer
            self._handle_admin(request_id, op, document, reply)
            return
        self._admit(_PendingRequest(request_id, op, document, reply,
                                    self._route_of(document, op)))

    def _handle_admin(self, request_id, op: str, document: Dict[str, Any],
                      reply) -> None:
        if self._lifecycle is None:
            reply(error_response(request_id, ERR_NO_REGISTRY,
                                 "daemon was started without --root; "
                                 "online operations need a model registry"))
            with self._stats_lock:
                self._errors += 1
            return
        try:
            if op == "swap":
                result = self._lifecycle.swap(
                    document["model"],
                    version=document.get("version"),
                    rollback=bool(document.get("rollback", False)),
                    track_latest=bool(document.get("track_latest", False)))
            else:
                action = document.get("action", "status")
                if action == "start":
                    result = self._lifecycle.shadow_start(
                        document["model"], int(document["version"]),
                        fraction=float(document.get("fraction", 0.2)),
                        tolerance=float(document.get("tolerance", 0.0)),
                        policy=ShadowPolicy(
                            min_compared=int(document.get("min_compared",
                                                          0)),
                            promote_below=float(
                                document.get("promote_below", 0.0)),
                            abort_above=float(
                                document.get("abort_above", 1.0))))
                elif action == "stop":
                    result = self._lifecycle.shadow_stop(document["model"])
                else:
                    result = self._lifecycle.shadow_status(document["model"])
        except (SwapError, KeyError, ValueError, RuntimeError) as exc:
            reply(error_response(request_id, ERR_BAD_REQUEST,
                                 f"{type(exc).__name__}: {exc}"))
            with self._stats_lock:
                self._errors += 1
            return
        reply(ok_response(request_id, result))

    @staticmethod
    def _route_of(document: Dict[str, Any], op: str) -> tuple:
        if op in ("tune", "map"):
            return ("model", document["model"], document.get("version"))
        if op == "session":
            return _ROUTE_SESSION
        return _ROUTE_DEBUG

    def _admit(self, request: _PendingRequest) -> None:
        with self._lock:
            if self._draining or not self._running:
                shed_code, message = ERR_SHUTTING_DOWN, \
                    "daemon is shutting down"
            elif self._queued >= self.max_queue:
                shed_code, message = ERR_OVERLOADED, \
                    f"request queue is full ({self._queued} waiting)"
            else:
                pending = self._routes.get(request.route)
                if pending is None:
                    pending = self._routes.setdefault(request.route,
                                                      collections.deque())
                pending.append(request)
                self._queued += 1
                self._work_available.notify_all()
                return
            depth = self._queued
        with self._stats_lock:
            self._shed += 1
        request.reply(error_response(request.request_id, shed_code,
                                     message, queue_depth=depth))

    # ------------------------------------------------------------------
    # dispatcher: deadline-aware batch formation
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if not self._running:
                    return
                batch_assignment = self._form_batch_locked()
                if batch_assignment is None:
                    if self._idle_worker_locked() is None:
                        # all workers busy: nothing to compute until the
                        # collector/monitor notifies that one freed up
                        self._work_available.wait(0.5)
                    else:
                        self._work_available.wait(
                            self._next_deadline_locked())
                    continue
                worker, batch_id, batch, payloads = batch_assignment
            try:
                worker.task_queue.put(("batch", batch_id, payloads))
            except (OSError, ValueError):
                pass        # dead worker: the monitor reassigns the batch

    def _idle_worker_locked(self) -> Optional[_Worker]:
        for worker in self._pool.values():
            if worker.busy_with is None and worker.alive():
                return worker
        return None

    def _form_batch_locked(self):
        """Pop one flushable batch and assign it to an idle worker.

        A route flushes when it holds ``max_batch`` requests, when its
        oldest request has waited ``deadline_ms``, or unconditionally
        during a drain.  Among flushable routes the one with the *oldest*
        head request wins, so a saturated hot route cannot starve another
        route's overdue requests.  Returns ``None`` when nothing is
        flushable or no worker is idle.

        Version stamping happens here, under the dispatch lock: a
        latest-route batch is dispatched with the lifecycle's *resolved*
        active version written into every payload, so one batch is always
        one version and a hot-swap flip takes effect exactly between
        batches.  When no live batch is flushable, a queued *shadow*
        batch may use the worker — but only while enough workers stay
        idle for arriving live traffic (shadow never runs ahead of it).
        """
        worker = self._idle_worker_locked()
        if worker is None:
            self._note_shadow_contention_locked()
            return None
        now = time.perf_counter()
        chosen = None
        for route, pending in self._routes.items():
            if not pending:
                continue
            if (len(pending) >= self.max_batch or self._draining
                    or now - pending[0].enqueued_at >= self.deadline_s):
                if (chosen is None or pending[0].enqueued_at
                        < self._routes[chosen][0].enqueued_at):
                    chosen = route
        if chosen is None:
            return self._form_shadow_batch_locked(worker)
        pending = self._routes[chosen]
        batch = [pending.popleft()
                 for _ in range(min(len(pending), self.max_batch))]
        if not pending:
            del self._routes[chosen]      # don't accumulate dead routes
        self._queued -= len(batch)
        payloads = self._stamped_payloads_locked(chosen, batch)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._inflight[batch_id] = batch
        worker.busy_with = batch_id
        return worker, batch_id, batch, payloads

    def _stamped_payloads_locked(self, route: tuple,
                                 batch: List[_PendingRequest]
                                 ) -> List[Dict[str, Any]]:
        """The batch's wire payloads, stamped with one resolved version."""
        if (route[0] == "model" and route[2] is None
                and self._lifecycle is not None):
            active = self._lifecycle.resolve(route[1])
            if active is not None:
                stamped = []
                for request in batch:
                    payload = dict(request.payload)
                    payload["version"] = active
                    stamped.append(payload)
                return stamped
        return [request.payload for request in batch]

    def _note_shadow_contention_locked(self) -> None:
        """Count a live batch stalled behind a shadow-occupied worker."""
        if not self._queued or not self._shadow_batch_ids:
            return
        if not any(worker.busy_with in self._shadow_batch_ids
                   for worker in self._pool.values()):
            return
        now = time.perf_counter()
        for pending in self._routes.values():
            if not pending:
                continue
            if (len(pending) >= self.max_batch or self._draining
                    or now - pending[0].enqueued_at >= self.deadline_s):
                head = pending[0].request_id
                if head not in self._contention_seen:
                    self._contention_seen.add(head)
                    self._shadow_contention += 1
                return

    def _form_shadow_batch_locked(self, worker: _Worker):
        """A shadow batch, only when live traffic keeps enough workers.

        Policy: with live requests queued (none flushable yet), at least
        two workers must be idle so one remains for the live batch that
        is about to flush; with an empty live queue any idle worker may
        drain shadows.
        """
        if not self._shadow_queued or self._draining:
            return None
        if self._queued:
            idle = sum(1 for candidate in self._pool.values()
                       if candidate.busy_with is None and candidate.alive())
            if idle < 2:
                return None
        chosen = None
        for route, pending in self._shadow_routes.items():
            if pending:
                chosen = route
                break
        if chosen is None:
            return None
        pending = self._shadow_routes[chosen]
        batch = [pending.popleft()
                 for _ in range(min(len(pending), self.max_batch))]
        if not pending:
            del self._shadow_routes[chosen]
        self._shadow_queued -= len(batch)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._inflight[batch_id] = batch
        self._shadow_batch_ids.add(batch_id)
        worker.busy_with = batch_id
        return worker, batch_id, batch, \
            [request.payload for request in batch]

    def _next_deadline_locked(self) -> float:
        """Seconds until the oldest pending request's flush deadline."""
        now = time.perf_counter()
        horizon = 0.5
        for pending in self._routes.values():
            if pending:
                horizon = min(horizon, pending[0].enqueued_at
                              + self.deadline_s - now)
        return max(horizon, 0.001)

    # ------------------------------------------------------------------
    # collector: worker results back to the connections
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=0.1)
            except Exception:
                if not self._running:
                    return
                continue
            if message[0] == "ready":
                continue              # a healed worker came up
            if message[0] == "control_done":
                _, worker_id, control_id, ok, detail = message
                self._control_ack(worker_id, control_id, ok, detail)
                continue
            if message[0] != "done":
                continue
            _, worker_id, batch_id, results, extras = message
            for label, snapshot in (extras.get("drift") or {}).items():
                self._drift.update(worker_id, label, snapshot)
            with self._lock:
                batch = self._inflight.pop(batch_id, None)
                shadow = batch_id in self._shadow_batch_ids
                self._shadow_batch_ids.discard(batch_id)
                worker = self._pool.get(worker_id)
                if worker is not None and worker.busy_with == batch_id:
                    worker.busy_with = None
                self._work_available.notify_all()
                if not self._queued and not self._inflight:
                    self._drained.notify_all()
            if batch is None:
                continue              # already failed over by the monitor
            self._deliver(batch, results, worker_id, batch_id,
                          shadow=shadow)

    def _deliver(self, batch: List[_PendingRequest],
                 results: List[Dict[str, Any]], worker_id: int,
                 batch_id: int, shadow: bool = False) -> None:
        if shadow:
            # off the books: shadow answers only feed the diff report (the
            # reply closures), never latency/throughput accounting
            with self._stats_lock:
                self._shadow_batch_count += 1
            for request, outcome in zip(batch, results):
                if outcome.get("ok"):
                    request.reply(ok_response(request.request_id,
                                              dict(outcome["result"])))
                else:
                    error = outcome.get("error") or {}
                    request.reply(error_response(
                        request.request_id,
                        error.get("code", ERR_INTERNAL),
                        error.get("message", "")))
            return
        now = time.perf_counter()
        with self._stats_lock:
            size = len(batch)
            self._batch_histogram[size] = \
                self._batch_histogram.get(size, 0) + 1
        for request, outcome in zip(batch, results):
            latency_ms = 1e3 * (now - request.enqueued_at)
            # account BEFORE replying: a client that reads /stats right
            # after its response must see its own request counted
            with self._stats_lock:
                self._completed += 1
                self._errors += int(not outcome.get("ok"))
                self._latencies.append(latency_ms)
                model = request.payload.get("model", request.op)
                self._per_model[model] = self._per_model.get(model, 0) + 1
            if outcome.get("ok"):
                result = dict(outcome["result"])
                result["latency_ms"] = latency_ms
                result["worker"] = worker_id
                result["batch"] = batch_id
                request.reply(ok_response(request.request_id, result))
                self._maybe_tee_shadow(request, result)
            else:
                error = outcome.get("error") or {"code": ERR_INTERNAL,
                                                 "message": "worker returned "
                                                            "no result"}
                request.reply(error_response(request.request_id,
                                             error.get("code", ERR_INTERNAL),
                                             error.get("message", "")))

    # ------------------------------------------------------------------
    # shadow deploys: tee answered live requests to the candidate
    # ------------------------------------------------------------------
    def _maybe_tee_shadow(self, request: _PendingRequest,
                          result: Dict[str, Any]) -> None:
        if self._lifecycle is None or request.op not in ("tune", "map"):
            return
        model = request.payload.get("model")
        candidate = self._lifecycle.sample_shadow(model)
        if candidate is None or candidate == result.get("version"):
            return
        lifecycle = self._lifecycle
        op = request.op
        primary = {key: result.get(key)
                   for key in ("kernel", "version", "config_label",
                               "num_threads", "schedule", "chunk_size",
                               "label", "device")}
        payload = dict(request.payload)
        payload["version"] = int(candidate)

        def record(document: Dict[str, Any]) -> None:
            lifecycle.record_shadow(model, candidate, op, primary, document)

        shadow = _PendingRequest(f"shadow:{request.request_id}", op,
                                 payload, record,
                                 ("shadow", model, int(candidate)))
        with self._lock:
            if (not self._running or self._draining
                    or self._shadow_queued >= self.max_queue):
                dropped = True
            else:
                dropped = False
                pending = self._shadow_routes.setdefault(
                    shadow.route, collections.deque())
                pending.append(shadow)
                self._shadow_queued += 1
                self._work_available.notify_all()
        if dropped:
            lifecycle.record_shadow_dropped(model, candidate)

    # ------------------------------------------------------------------
    # monitor: worker crash detection, retry and pool healing
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while True:
            time.sleep(0.05)
            with self._lock:
                if not self._running:
                    return
                dead = [worker for worker in self._pool.values()
                        if not worker.alive()]
                recovered: List[_PendingRequest] = []
                failed: List[_PendingRequest] = []
                shadow_failed: List[_PendingRequest] = []
                for worker in dead:
                    del self._pool[worker.worker_id]
                    self._worker_restarts += 1
                    if worker.busy_with is not None:
                        was_shadow = worker.busy_with in self._shadow_batch_ids
                        self._shadow_batch_ids.discard(worker.busy_with)
                        batch = self._inflight.pop(worker.busy_with, [])
                        for request in batch:
                            if was_shadow:
                                # shadow work is best-effort: never retried,
                                # never counted against live traffic
                                shadow_failed.append(request)
                                continue
                            request.attempts += 1
                            if (request.op == "_crash"
                                    or request.attempts >= MAX_ATTEMPTS):
                                failed.append(request)
                            else:
                                recovered.append(request)
                    self._drift.forget_worker(worker.worker_id)
                    self._spawn_worker_locked()
                for request in recovered:
                    # retry at the front of its route: it has already waited
                    pending = self._routes.setdefault(request.route,
                                                      collections.deque())
                    pending.appendleft(request)
                    self._queued += 1
                if recovered or dead:
                    self._work_available.notify_all()
            for request in shadow_failed:
                request.reply(error_response(
                    request.request_id, ERR_WORKER_CRASHED,
                    "worker process died while executing shadow request"))
            for request in failed:
                with self._stats_lock:
                    self._completed += 1
                    self._errors += 1
                request.reply(error_response(
                    request.request_id, ERR_WORKER_CRASHED,
                    "worker process died while executing this request"))
            if recovered:
                with self._stats_lock:
                    self._retried += len(recovered)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Queue depth, batch-size histogram, latency percentiles, workers."""
        with self._lock:
            queue_depth = self._queued
            per_route = {route_label(route): len(pending)
                         for route, pending in self._routes.items()
                         if pending}
            inflight = {batch_id: len(batch)
                        for batch_id, batch in self._inflight.items()}
            alive = sum(worker.alive() for worker in self._pool.values())
            shadow_depth = self._shadow_queued
            shadow_contention = self._shadow_contention
        if self._lifecycle is not None:
            lifecycle_stats: Optional[Dict[str, Any]] = {
                "enabled": True,
                "watch_interval_s": self.watch_interval_s,
            }
            lifecycle_stats.update(self._lifecycle.stats())
            shadow_routes = self._lifecycle.shadow_stats()
            shadow_finished = self._lifecycle.finished_shadow_stats()
        else:
            lifecycle_stats = None
            shadow_routes = {}
            shadow_finished = {}
        with self._stats_lock:
            histogram = dict(sorted(self._batch_histogram.items()))
            batches = sum(histogram.values())
            batched = sum(size * count for size, count in histogram.items())
            latencies = sorted(self._latencies)
            snapshot = {
                "uptime_s": time.perf_counter() - self._started_at,
                "address": self.address,
                "transport": self.scheme,
                "workers": {"configured": self.workers, "alive": alive,
                            "restarts": self._worker_restarts},
                "queue": {"depth": queue_depth, "max_queue": self.max_queue,
                          "per_route": per_route,
                          "inflight_requests": sum(inflight.values()),
                          "inflight_batches": len(inflight)},
                "requests": {"received": self._received,
                             "completed": self._completed,
                             "errors": self._errors,
                             "shed": self._shed,
                             "retried": self._retried},
                "batches": {
                    "count": batches,
                    "histogram": {str(size): count
                                  for size, count in histogram.items()},
                    "max_size": max(histogram) if histogram else 0,
                    "mean_size": batched / max(1, batches),
                },
                "latency_ms": {
                    "count": len(latencies),
                    "mean": (sum(latencies) / len(latencies)
                             if latencies else 0.0),
                    "p50": percentile(latencies, 0.50),
                    "p99": percentile(latencies, 0.99),
                    "p999": percentile(latencies, 0.999),
                },
                "per_model": dict(self._per_model),
                "max_batch": self.max_batch,
                "deadline_ms": 1e3 * self.deadline_s,
                "lifecycle": lifecycle_stats,
                "shadow": {
                    "routes": shadow_routes,
                    "finished": shadow_finished,
                    "queue_depth": shadow_depth,
                    "batches": self._shadow_batch_count,
                    "contention": shadow_contention,
                },
                "drift": {"routes": self._drift.stats()},
            }
        return snapshot
