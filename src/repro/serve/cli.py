"""Command line interface: ``python -m repro.serve <command>``.

Commands
--------
``publish-demo``  train a small demo tuner/mapper and publish it
``list``          enumerate registry contents
``info``          print a published version's manifest
``tune``          tune one kernel with a published OpenMP tuner
``map``           map one kernel with a published device mapper
``campaign``      run/resume a parallel black-box search campaign
``fleet-coordinator``  serve a campaign's config batches as leases so
                  workers on any host can evaluate them (fault-tolerant,
                  elastic; resumable from the same checkpoints)
``fleet-worker``  lease/evaluate/submit against a running coordinator;
                  ``--faults`` (or ``REPRO_FAULTS``) injects a chaos plan
``daemon``        serve models over a socket (multi-worker, batched);
                  ``--socket PATH`` for AF_UNIX or ``--tcp HOST:PORT``
``router``        shard requests over replica daemons (consistent hashing,
                  health probes, fleet-level admission control)
``request``       send one request to a running daemon or router
``swap``          hot-swap a served model to another published version
                  (or ``--rollback`` to the previous one) with zero drain
``shadow``        start/stop/inspect a shadow deploy: tee a fraction of
                  live traffic to a candidate version and diff predictions
``loadgen``       open-loop Poisson load against a daemon or router

Machine-readable output: every command prints one JSON document to stdout.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.serve.artifacts import ArtifactError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Publish and query MGA tuner models.")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("publish-demo",
                          help="train a small tuner and publish it")
    demo.add_argument("--root", required=True, help="registry root directory")
    demo.add_argument("--name", default="demo-openmp", help="model name")
    demo.add_argument("--task", choices=("openmp", "devmap"), default="openmp")
    demo.add_argument("--kernels", type=int, default=8,
                      help="number of training kernels")
    demo.add_argument("--inputs", type=int, default=3,
                      help="input sizes per kernel (openmp task)")
    demo.add_argument("--epochs", type=int, default=10)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--no-drift", action="store_true",
                      help="skip co-publishing the input-drift baseline "
                           "sketched from the training set")

    lst = sub.add_parser("list", help="list registry contents")
    lst.add_argument("--root", required=True)

    info = sub.add_parser("info", help="show a published version's manifest")
    info.add_argument("--root", required=True)
    info.add_argument("name")
    info.add_argument("--version", type=int, default=None)

    tune = sub.add_parser("tune", help="tune one kernel")
    tune.add_argument("--root", default=None,
                      help="registry root (omit with --daemon)")
    tune.add_argument("--daemon", default=None, metavar="SOCKET",
                      help="route through a running daemon instead of "
                           "loading the model in-process")
    tune.add_argument("--model", required=True)
    tune.add_argument("--version", type=int, default=None)
    tune.add_argument("--kernel", required=True,
                      help="kernel uid, e.g. polybench/gemm")
    tune.add_argument("--scale", type=float, default=None)
    tune.add_argument("--target-bytes", type=float, default=None)

    mapper = sub.add_parser("map", help="map one kernel to CPU/GPU")
    mapper.add_argument("--root", default=None,
                        help="registry root (omit with --daemon)")
    mapper.add_argument("--daemon", default=None, metavar="SOCKET",
                        help="route through a running daemon instead of "
                             "loading the model in-process")
    mapper.add_argument("--model", required=True)
    mapper.add_argument("--version", type=int, default=None)
    mapper.add_argument("--kernel", required=True)
    mapper.add_argument("--transfer-bytes", type=float, required=True)
    mapper.add_argument("--wgsize", type=int, default=64)

    daemon = sub.add_parser(
        "daemon",
        help="serve published models over a socket: a dispatcher forms "
             "micro-batches under a latency deadline and a pool of worker "
             "processes executes them")
    daemon.add_argument("--socket", default=None,
                        help="address to listen on: an AF_UNIX path or "
                             "tcp://HOST:PORT")
    daemon.add_argument("--tcp", default=None, metavar="HOST:PORT",
                        help="shorthand for --socket tcp://HOST:PORT "
                             "(port 0 binds an ephemeral port)")
    daemon.add_argument("--root", default=None,
                        help="model registry root (omit for a session-only "
                             "daemon)")
    daemon.add_argument("--workers", type=int, default=2,
                        help="worker processes, each holding warm models")
    daemon.add_argument("--max-batch", type=int, default=16,
                        help="flush a batch at this many requests")
    daemon.add_argument("--deadline-ms", type=float, default=10.0,
                        help="flush a batch when its oldest request has "
                             "waited this long")
    daemon.add_argument("--max-queue", type=int, default=64,
                        help="bounded queue: shed (overloaded) beyond this "
                             "many waiting requests")
    daemon.add_argument("--engine-wait-ms", type=float, default=2.0,
                        help="worker-side engine micro-batch window")
    daemon.add_argument("--preload", action="append", default=[],
                        metavar="MODEL[@VERSION]",
                        help="warm these models in every worker before "
                             "accepting requests (repeatable)")
    daemon.add_argument("--watch-interval", type=float, default=0.5,
                        help="seconds between registry-generation polls for "
                             "auto hot-swap of unpinned routes (0 disables "
                             "the watch thread)")
    daemon.add_argument("--debug-ops", action="store_true",
                        help="enable the fault-injection ops used by tests "
                             "(_crash, _sleep)")
    daemon.add_argument("--mp-start", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for the workers")

    router = sub.add_parser(
        "router",
        help="shard requests over replica daemons: consistent hashing by "
             "(model, version) over replica groups, health-checked "
             "discovery, fleet-level admission control")
    router.add_argument("--listen", default=None,
                        help="address to listen on: an AF_UNIX path or "
                             "tcp://HOST:PORT")
    router.add_argument("--tcp", default=None, metavar="HOST:PORT",
                        help="shorthand for --listen tcp://HOST:PORT")
    router.add_argument("--replica", action="append", default=[],
                        metavar="[GROUP=]ADDRESS", required=True,
                        help="a replica daemon address, optionally "
                             "prefixed with its shard group (repeat; "
                             "same GROUP = load-balanced replicas of one "
                             "shard)")
    router.add_argument("--probe-interval", type=float, default=0.5,
                        help="seconds between health probes per replica")
    router.add_argument("--fail-after", type=int, default=3,
                        help="consecutive probe failures before ejection")
    router.add_argument("--max-inflight", type=int, default=256,
                        help="fleet-level cap on in-flight requests; "
                             "beyond it requests are shed (overloaded)")
    router.add_argument("--max-inflight-per-route", type=int, default=None,
                        help="per-(model,version) in-flight cap "
                             "(default: max-inflight / 2)")
    router.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per group on the hash ring")

    request = sub.add_parser(
        "request",
        help="send one JSON request to a running daemon or router")
    request.add_argument("--socket", required=True,
                        help="daemon/router address (AF_UNIX path or "
                             "tcp://HOST:PORT)")
    group = request.add_mutually_exclusive_group(required=True)
    group.add_argument("--json", default=None,
                       help="raw request document, e.g. "
                            "'{\"op\": \"stats\"}'")
    group.add_argument("--op", default=None,
                       choices=("ping", "stats", "shutdown", "tune", "map"))
    request.add_argument("--model", default=None)
    request.add_argument("--version", type=int, default=None)
    request.add_argument("--kernel", default=None)
    request.add_argument("--scale", type=float, default=None)
    request.add_argument("--target-bytes", type=float, default=None)
    request.add_argument("--transfer-bytes", type=float, default=None)
    request.add_argument("--wgsize", type=int, default=None)
    request.add_argument("--timeout", type=float, default=600.0)

    swap = sub.add_parser(
        "swap",
        help="hot-swap a served model to another published version with "
             "zero drain (flips between micro-batches)")
    swap.add_argument("--socket", required=True,
                      help="daemon/router address (AF_UNIX path or "
                           "tcp://HOST:PORT)")
    swap.add_argument("--model", required=True)
    swap.add_argument("--version", type=int, default=None,
                      help="target version (default: registry latest); an "
                           "explicit version pins the route")
    swap.add_argument("--rollback", action="store_true",
                      help="return to the previously active version and "
                           "pin it")
    swap.add_argument("--track-latest", action="store_true",
                      help="swap without pinning: the route keeps following "
                           "new registry publishes")
    swap.add_argument("--timeout", type=float, default=600.0)

    shadow = sub.add_parser(
        "shadow",
        help="shadow deploys: tee a fraction of a model's live traffic to "
             "a candidate version and diff the predictions")
    shadow.add_argument("action", choices=("start", "stop", "status"))
    shadow.add_argument("--socket", required=True,
                        help="daemon/router address (AF_UNIX path or "
                             "tcp://HOST:PORT)")
    shadow.add_argument("--model", required=True)
    shadow.add_argument("--version", type=int, default=None,
                        help="candidate version (required for start)")
    shadow.add_argument("--fraction", type=float, default=0.2,
                        help="fraction of live traffic to tee (0, 1]")
    shadow.add_argument("--tolerance", type=float, default=0.0,
                        help="relative num_threads tolerance under which a "
                             "tune disagreement counts as 'near'")
    shadow.add_argument("--min-compared", type=int, default=0,
                        help="comparisons before the auto promote/abort "
                             "policy may act (0 disables the policy)")
    shadow.add_argument("--promote-below", type=float, default=0.0,
                        help="auto-promote when the disagreement rate is "
                             "at or below this")
    shadow.add_argument("--abort-above", type=float, default=1.0,
                        help="auto-abort when the disagreement rate is "
                             "at or above this")
    shadow.add_argument("--timeout", type=float, default=600.0)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load against a daemon or router: latency "
             "histograms, SLO attainment, shed accounting")
    loadgen.add_argument("--address", required=True,
                         help="daemon/router address (AF_UNIX path or "
                              "tcp://HOST:PORT)")
    loadgen.add_argument("--json", required=True,
                         help="request template document, e.g. '{\"op\": "
                              "\"tune\", \"model\": \"demo\", \"kernel\": "
                              "\"polybench/gemm\"}'")
    loadgen.add_argument("--rate", type=float, required=True,
                         help="offered load in requests/second")
    loadgen.add_argument("--requests", type=int, required=True,
                         help="total requests to offer")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="Poisson arrival seed")
    loadgen.add_argument("--concurrency", type=int, default=32,
                         help="sender threads/connections (must exceed "
                              "rate x worst-case latency)")
    loadgen.add_argument("--slo-ms", type=float, default=None,
                         help="report attainment against this latency SLO")
    loadgen.add_argument("--timeout", type=float, default=120.0)

    campaign = sub.add_parser(
        "campaign",
        help="run a parallel black-box search campaign on the simulator")
    # search-defining flags default to None so the resume path can tell
    # "explicitly passed" (an error: the checkpoint owns these) from
    # "omitted" (CampaignRequest supplies the defaults)
    campaign.add_argument("--kernel", default=None,
                          help="kernel uid, e.g. polybench/gemm "
                               "(not allowed with --resume)")
    campaign.add_argument("--tuner", default=None,
                          help="strategy: random/oracle/opentuner/ytopt/bliss "
                               "(default random)")
    campaign.add_argument("--budget", type=int, default=None,
                          help="evaluation budget (default 20; oracle "
                               "ignores it)")
    campaign.add_argument("--arch", default=None,
                          help="micro-architecture preset name "
                               "(default skylake_4114)")
    campaign.add_argument("--space", choices=("full", "threads"),
                          default=None, help="(default full)")
    campaign.add_argument("--scale", type=float, default=None)
    campaign.add_argument("--noise", type=float, default=None)
    campaign.add_argument("--repeats", type=int, default=None,
                          help="simulated measurements per configuration")
    campaign.add_argument("--seed", type=int, default=None,
                          help="search seed (proposals)")
    campaign.add_argument("--sim-seed", type=int, default=None,
                          help="measurement seed (simulator noise)")
    campaign.add_argument("--batch-size", type=int, default=None,
                          help="proposals per ask/tell round (default 8)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="evaluation worker processes")
    campaign.add_argument("--checkpoint", default=None,
                          help="directory to checkpoint campaign state into")
    campaign.add_argument("--resume", default=None,
                          help="checkpoint directory to continue from")

    fleet = sub.add_parser(
        "fleet-coordinator",
        help="serve a campaign's proposal batches as config leases: workers "
             "on any host lease, heartbeat and submit; the coordinator owns "
             "ask/tell, reissues expired leases and falls back to local "
             "evaluation when no workers are connected")
    fleet.add_argument("--listen", default=None,
                       help="address to listen on: an AF_UNIX path or "
                            "tcp://HOST:PORT")
    fleet.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="shorthand for --listen tcp://HOST:PORT "
                            "(port 0 binds an ephemeral port)")
    # search-defining flags: same conflict-with---resume contract as the
    # `campaign` subcommand (the checkpoint owns the search definition)
    fleet.add_argument("--kernel", default=None,
                       help="kernel uid (not allowed with --resume)")
    fleet.add_argument("--tuner", default=None,
                       help="strategy: random/oracle/opentuner/ytopt/bliss "
                            "(default random)")
    fleet.add_argument("--budget", type=int, default=None,
                       help="evaluation budget (default 20)")
    fleet.add_argument("--arch", default=None,
                       help="micro-architecture preset (default skylake_4114)")
    fleet.add_argument("--space", choices=("full", "threads"), default=None)
    fleet.add_argument("--scale", type=float, default=None)
    fleet.add_argument("--noise", type=float, default=None)
    fleet.add_argument("--repeats", type=int, default=None)
    fleet.add_argument("--seed", type=int, default=None,
                       help="search seed (proposals)")
    fleet.add_argument("--sim-seed", type=int, default=None,
                       help="measurement seed (simulator noise)")
    fleet.add_argument("--batch-size", type=int, default=None,
                       help="proposals per ask/tell round (default 8)")
    fleet.add_argument("--walltime-scale", type=float, default=None,
                       help="make each evaluation occupy wall-clock time "
                            "proportional to the simulated execution")
    fleet.add_argument("--walltime-cap", type=float, default=None,
                       help="cap per-evaluation occupancy (seconds)")
    fleet.add_argument("--checkpoint", default=None,
                       help="directory to checkpoint campaign state into")
    fleet.add_argument("--resume", default=None,
                       help="checkpoint directory to continue from")
    fleet.add_argument("--lease-timeout", type=float, default=2.0,
                       help="seconds without a heartbeat before a lease "
                            "expires and its configs are reissued")
    fleet.add_argument("--lease-configs", type=int, default=4,
                       help="max configs granted per lease")
    fleet.add_argument("--local-fallback", type=float, default=1.0,
                       help="seconds of worker silence before the "
                            "coordinator evaluates configs itself "
                            "(negative disables)")
    fleet.add_argument("--linger", type=float, default=2.0,
                       help="keep serving this long after the campaign "
                            "finishes so workers observe done and exit")

    fworker = sub.add_parser(
        "fleet-worker",
        help="evaluate config leases from a running fleet-coordinator "
             "until the campaign is done")
    fworker.add_argument("--coordinator", required=True, metavar="ADDRESS",
                         help="coordinator address (AF_UNIX path or "
                              "tcp://HOST:PORT)")
    fworker.add_argument("--worker-id", default=None,
                         help="stable worker name (default: pid-derived)")
    fworker.add_argument("--max-configs", type=int, default=2,
                         help="configs to request per lease")
    fworker.add_argument("--max-leases", type=int, default=None,
                         help="exit after this many leases (default: run "
                              "until the campaign is done)")
    fworker.add_argument("--request-timeout", type=float, default=5.0)
    fworker.add_argument("--retries", type=int, default=10,
                         help="transport-level retries per request")
    fworker.add_argument("--faults", default=None, metavar="SPEC",
                         help="chaos fault plan, e.g. 'drop=0.1,delay_ms=15,"
                              "kill_after=9' (default: REPRO_FAULTS env)")
    fworker.add_argument("--fault-seed", type=int, default=None,
                         help="fault plan RNG seed (default: "
                              "REPRO_FAULT_SEED env)")
    fworker.add_argument("--fault-seed-offset", type=int, default=0,
                         help="decorrelates sibling workers' fault schedules")
    return parser


# ----------------------------------------------------------------------
def _cmd_publish_demo(args) -> int:
    from repro.core import DeviceMapper, MGATuner
    from repro.datasets import DevMapDatasetBuilder, OpenMPDatasetBuilder
    from repro.kernels import registry as kernels
    from repro.serve.drift import baseline_for
    from repro.serve.registry import ModelRegistry
    from repro.simulator.microarch import COMET_LAKE_8C, TAHITI_7970
    from repro.tuners import thread_search_space

    model_registry = ModelRegistry(args.root)
    small = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                 mlp_hidden=16)
    if args.task == "openmp":
        arch = COMET_LAKE_8C
        space = list(thread_search_space(arch))
        specs = kernels.openmp_kernels()[:args.kernels]
        dataset = OpenMPDatasetBuilder(arch, space, seed=args.seed).build(
            specs, np.geomspace(1e5, 2e8, args.inputs))
        tuner = MGATuner(arch, space, seed=args.seed, **small)
        tuner.fit(dataset, epochs=args.epochs, dae_epochs=args.epochs)
        baseline = None if args.no_drift else baseline_for(tuner, dataset)
        published = model_registry.publish(
            args.name, tuner,
            metadata={"task": "openmp", "arch": arch.name,
                      "train_samples": len(dataset),
                      "num_configs": dataset.num_configs},
            drift_baseline=baseline)
    else:
        specs = kernels.opencl_kernels()[:args.kernels]
        dataset = DevMapDatasetBuilder(TAHITI_7970, seed=args.seed).build(
            specs, points_per_kernel=3)
        mapper = DeviceMapper(seed=args.seed, **small)
        mapper.fit(dataset, epochs=args.epochs, dae_epochs=args.epochs)
        baseline = None if args.no_drift else baseline_for(mapper, dataset)
        published = model_registry.publish(
            args.name, mapper,
            metadata={"task": "devmap", "gpu": dataset.gpu_name,
                      "train_samples": len(dataset)},
            drift_baseline=baseline)
    print(json.dumps({"published": published.ref, "path": published.path,
                      "kind": published.kind,
                      "drift_baseline": baseline is not None,
                      "metadata": published.metadata}, indent=2))
    return 0


def _cmd_list(args) -> int:
    from repro.serve.registry import ModelRegistry

    entries = ModelRegistry(args.root).describe()
    print(json.dumps([{"name": e.name, "version": e.version, "kind": e.kind,
                       "metadata": e.metadata} for e in entries], indent=2))
    return 0


def _cmd_info(args) -> int:
    from repro.serve.registry import ModelRegistry

    manifest = ModelRegistry(args.root).info(args.name, args.version)
    manifest = dict(manifest)
    manifest.pop("config", None)      # large; `load` reads it, humans rarely do
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _service_for(args):
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import TuningService

    if args.daemon is None and args.root is None:
        raise ValueError("one of --root / --daemon is required")
    registry = ModelRegistry(args.root) if args.root is not None else None
    return TuningService(registry, daemon=args.daemon)


def _cmd_tune(args) -> int:
    from repro.serve.service import TuneRequest

    with _service_for(args) as service:
        response = service.tune(TuneRequest(
            model=args.model, version=args.version, kernel=args.kernel,
            scale=args.scale, target_bytes=args.target_bytes))
        print(json.dumps(dataclasses.asdict(response), indent=2))
    return 0


def _cmd_map(args) -> int:
    from repro.serve.service import MapRequest

    with _service_for(args) as service:
        response = service.map_device(MapRequest(
            model=args.model, version=args.version, kernel=args.kernel,
            transfer_bytes=args.transfer_bytes, wgsize=args.wgsize))
        print(json.dumps(dataclasses.asdict(response), indent=2))
    return 0


def _listen_address(socket_arg, tcp_arg, flag="--socket"):
    if socket_arg is not None and tcp_arg is not None:
        raise ValueError(f"{flag} and --tcp are mutually exclusive")
    if tcp_arg is not None:
        return f"tcp://{tcp_arg}"
    if socket_arg is None:
        raise ValueError(f"one of {flag} / --tcp is required")
    return socket_arg


def _cmd_daemon(args) -> int:
    import signal
    import threading

    from repro.serve.daemon import ServeDaemon

    daemon = ServeDaemon(
        address=_listen_address(args.socket, args.tcp),
        registry_root=args.root,
        workers=args.workers, max_batch=args.max_batch,
        deadline_ms=args.deadline_ms, max_queue=args.max_queue,
        engine_max_wait_ms=args.engine_wait_ms, preload=args.preload,
        debug_ops=args.debug_ops, mp_start_method=args.mp_start,
        watch_interval_s=args.watch_interval)
    daemon.start()
    # daemon.address is the *resolved* form (ephemeral TCP ports filled in)
    print(json.dumps({"ready": True, "socket": daemon.address,
                      "transport": daemon.scheme,
                      "workers": args.workers, "max_batch": args.max_batch,
                      "deadline_ms": args.deadline_ms,
                      "max_queue": args.max_queue, "pid": os.getpid()}),
          flush=True)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        # wake on signals AND on a `shutdown` request (which stops the
        # daemon after draining)
        while not stop.is_set() and daemon.running:
            stop.wait(0.2)
    finally:
        daemon.shutdown(drain=True)
    return 0


def _cmd_router(args) -> int:
    import signal
    import threading

    from repro.serve.router import ServeRouter

    router = ServeRouter(
        address=_listen_address(args.listen, args.tcp, flag="--listen"),
        replicas=args.replica, probe_interval=args.probe_interval,
        fail_after=args.fail_after, max_inflight=args.max_inflight,
        max_inflight_per_route=args.max_inflight_per_route,
        vnodes=args.vnodes)
    router.start()
    print(json.dumps({"ready": True, "listen": router.address,
                      "transport": router.scheme,
                      "replicas": [replica.address
                                   for replica in router.replicas],
                      "groups": sorted({replica.group for replica
                                        in router.replicas}),
                      "pid": os.getpid()}), flush=True)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        while not stop.is_set() and router.running:
            stop.wait(0.2)
    finally:
        router.shutdown()
    return 0


def _cmd_loadgen(args) -> int:
    from repro.serve.loadgen import open_loop

    template = json.loads(args.json)
    if not isinstance(template, dict) or "op" not in template:
        raise ValueError("--json must be a request object with an 'op'")
    report = open_loop(args.address, [dict(template)] * args.requests,
                       rate_rps=args.rate, seed=args.seed,
                       concurrency=args.concurrency, timeout=args.timeout,
                       slo_ms=args.slo_ms)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_request(args) -> int:
    from repro.serve.client import DaemonClient, DaemonError

    if args.json is not None:
        document = json.loads(args.json)
    else:
        document = {"op": args.op}
        for field in ("model", "version", "kernel", "scale",
                      "target_bytes", "transfer_bytes", "wgsize"):
            value = getattr(args, field)
            if value is not None:
                document[field] = value
        if args.op == "map":
            # same default as the in-process `map` subcommand
            document.setdefault("wgsize", 64)
    with DaemonClient(args.socket, timeout=args.timeout) as client:
        try:
            result = client.request(document)
        except DaemonError as exc:
            print(json.dumps({"ok": False, "error": {
                "code": exc.code, "message": exc.message}}, indent=2))
            return 1
    print(json.dumps({"ok": True, "result": result}, indent=2))
    return 0


def _cmd_swap(args) -> int:
    from repro.serve.client import DaemonClient, DaemonError

    with DaemonClient(args.socket, timeout=args.timeout) as client:
        try:
            result = client.swap(args.model, version=args.version,
                                 rollback=args.rollback,
                                 track_latest=args.track_latest)
        except DaemonError as exc:
            print(json.dumps({"ok": False, "error": {
                "code": exc.code, "message": exc.message}}, indent=2))
            return 1
    print(json.dumps({"ok": True, "result": result}, indent=2))
    return 0


def _cmd_shadow(args) -> int:
    from repro.serve.client import DaemonClient, DaemonError

    with DaemonClient(args.socket, timeout=args.timeout) as client:
        try:
            if args.action == "start":
                if args.version is None:
                    raise ValueError("shadow start requires --version")
                result = client.shadow_start(
                    args.model, args.version, fraction=args.fraction,
                    tolerance=args.tolerance,
                    min_compared=args.min_compared,
                    promote_below=args.promote_below,
                    abort_above=args.abort_above)
            elif args.action == "stop":
                result = client.shadow_stop(args.model)
            else:
                result = client.shadow_status(args.model)
        except DaemonError as exc:
            print(json.dumps({"ok": False, "error": {
                "code": exc.code, "message": exc.message}}, indent=2))
            return 1
    print(json.dumps({"ok": True, "result": result}, indent=2))
    return 0


def _cmd_campaign(args) -> int:
    from repro.serve.service import CampaignRequest, TuningService

    search_flags = {name: getattr(args, name) for name in
                    ("kernel", "tuner", "budget", "arch", "space", "scale",
                     "noise", "repeats", "seed", "sim_seed", "batch_size")}
    if args.resume is not None:
        conflicting = sorted(k for k, v in search_flags.items()
                             if v is not None)
        if conflicting:
            raise ValueError(
                "these flags define the search and come from the checkpoint; "
                "they cannot be combined with --resume: "
                + ", ".join("--" + c.replace("_", "-") for c in conflicting))
    request = CampaignRequest(
        workers=args.workers, checkpoint=args.checkpoint, resume=args.resume,
        **{k: v for k, v in search_flags.items() if v is not None})
    with TuningService() as service:
        response = service.run_campaign(request)
        print(json.dumps(dataclasses.asdict(response), indent=2))
    return 0


def _fleet_campaign(args):
    """Build (or resume) the TuningCampaign a coordinator will serve."""
    from repro.kernels import registry as kernel_registry
    from repro.serve.service import CampaignRequest
    from repro.simulator.microarch import get_microarch
    from repro.tuners.campaign import (
        SimObjectiveSpec,
        TuningCampaign,
        make_tuner,
    )
    from repro.tuners.space import full_search_space, thread_search_space

    search_flags = {name: getattr(args, name) for name in
                    ("kernel", "tuner", "budget", "arch", "space", "scale",
                     "noise", "repeats", "seed", "sim_seed", "batch_size",
                     "walltime_scale", "walltime_cap")}
    if args.resume is not None:
        conflicting = sorted(k for k, v in search_flags.items()
                             if v is not None)
        if conflicting:
            raise ValueError(
                "these flags define the search and come from the checkpoint; "
                "they cannot be combined with --resume: "
                + ", ".join("--" + c.replace("_", "-") for c in conflicting))
        return TuningCampaign.resume(
            args.resume, checkpoint_path=args.checkpoint or args.resume)
    walltime = {k: search_flags.pop(k) for k in
                ("walltime_scale", "walltime_cap")}
    request = CampaignRequest(
        checkpoint=args.checkpoint,
        **{k: v for k, v in search_flags.items() if v is not None})
    if request.kernel is None:
        raise ValueError("--kernel is required unless resuming from a "
                         "checkpoint")
    arch = get_microarch(request.arch)
    kernel = kernel_registry.get_kernel(request.kernel)
    if request.space == "threads":
        space = thread_search_space(arch)
    else:
        space = full_search_space(max_threads=arch.max_threads)
    objective_spec = SimObjectiveSpec(
        kernel_uid=kernel.uid, arch=arch, scale=request.scale,
        noise=request.noise, seed=request.sim_seed, repeats=request.repeats,
        **{k: v for k, v in walltime.items() if v is not None})
    config = ({} if request.tuner == "oracle"
              else {"budget": request.budget, "seed": request.seed})
    tuner = make_tuner(request.tuner, config)
    return TuningCampaign(tuner, space, objective_spec,
                          batch_size=request.batch_size,
                          checkpoint_path=request.checkpoint)


def _cmd_fleet_coordinator(args) -> int:
    import time

    from repro.tuners.fleet import CampaignCoordinator

    campaign = _fleet_campaign(args)
    fallback = None if args.local_fallback < 0 else args.local_fallback
    coordinator = CampaignCoordinator(
        campaign, _listen_address(args.listen, args.tcp, flag="--listen"),
        lease_timeout=args.lease_timeout,
        max_lease_configs=args.lease_configs,
        local_fallback_s=fallback)
    with coordinator:
        print(json.dumps({"ready": True, "listen": coordinator.address,
                          "campaign": coordinator.campaign_id,
                          "evaluations": len(campaign.history),
                          "budget": campaign.tuner.effective_budget(
                              campaign.space),
                          "pid": os.getpid()}), flush=True)
        result = coordinator.run()
        # let polling workers observe done before the listener goes away
        if args.linger > 0:
            time.sleep(args.linger)
        stats = coordinator.stats()
    print(json.dumps({
        "best_label": result.best_config.label(),
        "best_time": result.best_time,
        "evaluations": result.evaluations,
        "batches": campaign.batches,
        "wall_seconds": campaign.wall_seconds,
        "checkpoint": campaign.checkpoint_path,
        "finished": campaign.finished,
        "stats": stats}, indent=2))
    return 0


def _cmd_fleet_worker(args) -> int:
    from repro.serve.faults import FaultPlan
    from repro.tuners.fleet import run_worker

    if args.faults is not None:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    else:
        plan = FaultPlan.from_env()
        if plan is not None and args.fault_seed is not None:
            plan = dataclasses.replace(plan, seed=args.fault_seed)
    summary = run_worker(
        args.coordinator, worker_id=args.worker_id,
        max_configs=args.max_configs, fault_plan=plan,
        fault_seed_offset=args.fault_seed_offset,
        max_leases=args.max_leases,
        request_timeout=args.request_timeout, retries=args.retries)
    print(json.dumps(summary, indent=2))
    return 0


_COMMANDS = {
    "publish-demo": _cmd_publish_demo,
    "list": _cmd_list,
    "info": _cmd_info,
    "tune": _cmd_tune,
    "map": _cmd_map,
    "campaign": _cmd_campaign,
    "fleet-coordinator": _cmd_fleet_coordinator,
    "fleet-worker": _cmd_fleet_worker,
    "daemon": _cmd_daemon,
    "router": _cmd_router,
    "request": _cmd_request,
    "swap": _cmd_swap,
    "shadow": _cmd_shadow,
    "loadgen": _cmd_loadgen,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ArtifactError, KeyError, ValueError, TypeError, OSError) as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 1
