"""Injectable fault plans: induced stress for the serving and fleet layers.

Robustness claims in this repository are *qualified*, not asserted: the
chaos test suite and ``bench_campaign_elastic`` cycle the system through an
induced fault schedule — dropped, delayed and duplicated frames, stalled
heartbeats, ``SIGKILL``-ed worker processes — and check that the observable
behaviour (tuning histories, exactly-once tells) is identical to a fault-free
serial run.  This module is the injection point:

* a :class:`FaultPlan` is a declarative, picklable description of the faults
  to induce, parseable from a ``key=value`` spec string (CLI ``--faults``)
  or from the ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` environment;
* a :class:`FaultInjector` is one process's seeded *execution* of a plan:
  :func:`install` activates it process-wide and
  :meth:`~repro.serve.protocol.LineChannel.send` (the transport layer) plus
  the fleet worker's evaluation/heartbeat loops consult it via
  :func:`active`.

Faults are injected on the *sending* side of the installing process only, so
a chaos test can make workers unreliable while the coordinator under test
stays honest.  All randomness is drawn from one seeded generator per
injector: a pinned ``REPRO_FAULT_SEED`` makes a chaos run reproducible.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from typing import Dict, List, Optional

#: environment variables the CLI and worker entry points honour
ENV_PLAN = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"

_FLOAT_FIELDS = ("drop", "dup", "delay_ms", "stall_for")
_INT_FIELDS = ("kill_after", "stall_after", "seed")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A declarative fault schedule (see :class:`FaultInjector`).

    ``drop`` / ``dup`` are per-frame probabilities applied to every frame
    the installing process sends; ``delay_ms`` is the *maximum* of a uniform
    per-frame send delay.  ``kill_after`` SIGKILLs the process after that
    many objective evaluations (the kill lands after the value is computed
    but before it is submitted — the nastiest instant).  ``stall_after``
    silences heartbeats for ``stall_for`` seconds once that many beats have
    been sent, forcing lease expiry on a live worker.
    """

    drop: float = 0.0
    dup: float = 0.0
    delay_ms: float = 0.0
    kill_after: Optional[int] = None
    stall_after: Optional[int] = None
    stall_for: float = 3.0
    seed: int = 0

    def __post_init__(self):
        for name in ("drop", "dup"):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], "
                                 f"got {value!r}")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")

    @property
    def benign(self) -> bool:
        """True when the plan induces no faults at all."""
        return (self.drop == 0.0 and self.dup == 0.0 and self.delay_ms == 0.0
                and self.kill_after is None and self.stall_after is None)

    def to_spec(self) -> str:
        """The ``key=value,...`` form :meth:`parse` accepts."""
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is None or value == field.default:
                continue
            parts.append(f"{field.name}={value}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str, seed: Optional[int] = None) -> "FaultPlan":
        """A plan from ``"drop=0.1,delay_ms=15,kill_after=9"`` style specs."""
        values: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            name = name.strip()
            if not sep:
                raise ValueError(f"fault spec entries are key=value, "
                                 f"got {part!r}")
            if name in _FLOAT_FIELDS:
                values[name] = float(raw)
            elif name in _INT_FIELDS:
                values[name] = int(raw)
            else:
                known = ", ".join(_FLOAT_FIELDS + _INT_FIELDS)
                raise ValueError(f"unknown fault field {name!r} "
                                 f"(known: {known})")
        if seed is not None:
            values["seed"] = int(seed)
        return cls(**values)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS`` (+ seed), or ``None``."""
        environ = os.environ if environ is None else environ
        spec = environ.get(ENV_PLAN)
        if not spec:
            return None
        seed = environ.get(ENV_SEED)
        return cls.parse(spec, seed=int(seed) if seed else None)


class FaultInjector:
    """One process's seeded execution of a :class:`FaultPlan`.

    ``seed_offset`` decorrelates the fault schedules of sibling workers
    running the same plan (worker *i* passes its index).
    """

    def __init__(self, plan: FaultPlan, seed_offset: int = 0):
        import random

        self.plan = plan
        self.seed_offset = int(seed_offset)
        self._rng = random.Random((int(plan.seed) << 16) ^ self.seed_offset)
        self._lock = threading.Lock()
        self._evaluations = 0
        self._beats = 0
        self._stalled_at: Optional[float] = None
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.stalled = 0

    # ------------------------------------------------------------------
    # transport layer: consulted by LineChannel.send
    # ------------------------------------------------------------------
    def frames(self, frame: bytes) -> List[bytes]:
        """What to actually put on the wire for one outgoing frame."""
        with self._lock:
            drop = self.plan.drop > 0.0 and self._rng.random() < self.plan.drop
            dup = (not drop and self.plan.dup > 0.0
                   and self._rng.random() < self.plan.dup)
            delay = (self._rng.uniform(0.0, self.plan.delay_ms) / 1e3
                     if self.plan.delay_ms > 0.0 else 0.0)
            self.dropped += int(drop)
            self.duplicated += int(dup)
            self.delayed += int(delay > 0.0)
        if delay:
            time.sleep(delay)
        if drop:
            return []
        return [frame, frame] if dup else [frame]

    # ------------------------------------------------------------------
    # worker layer: evaluation kill schedule + heartbeat stalls
    # ------------------------------------------------------------------
    def evaluated(self) -> None:
        """Count one objective evaluation; SIGKILL self on schedule."""
        with self._lock:
            self._evaluations += 1
            kill = (self.plan.kill_after is not None
                    and self._evaluations >= self.plan.kill_after)
        if kill:
            os.kill(os.getpid(), signal.SIGKILL)

    def heartbeat_allowed(self) -> bool:
        """False while the plan says this beat must be swallowed."""
        if self.plan.stall_after is None:
            return True
        with self._lock:
            self._beats += 1
            if self._beats <= self.plan.stall_after:
                return True
            now = time.monotonic()
            if self._stalled_at is None:
                self._stalled_at = now
            if now - self._stalled_at < self.plan.stall_for:
                self.stalled += 1
                return False
            return True


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def install(plan: Optional[FaultPlan],
            seed_offset: int = 0) -> Optional[FaultInjector]:
    """Activate ``plan`` process-wide (``None`` uninstalls); returns it."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan, seed_offset) if plan is not None else None
    return _ACTIVE


def active() -> Optional[FaultInjector]:
    """The process's installed injector, or ``None`` (the common case)."""
    return _ACTIVE


def uninstall() -> None:
    install(None)
