"""Versioned on-disk artifacts for trained models and tuners.

An artifact is a directory with two files:

* ``manifest.json`` — format/kind versions, the JSON-serialisable
  configuration needed to rebuild the object (architecture hyper-parameters,
  :class:`~repro.core.mga.ModalityConfig`, micro-architecture, configuration
  space, counter names, IR2Vec entity names), and the SHA-256 of the array
  payload for integrity checking;
* ``arrays.npz`` — every numpy array: the model ``state_dict`` (weights plus
  fitted-scaler extra state) and the feature extractor's seed-embedding
  matrices.

``save_artifact`` / ``load_artifact`` round-trip :class:`MGAModel`,
:class:`MGATuner` and :class:`DeviceMapper`; loading in a fresh process
reproduces bit-identical predictions because every fitted component (weights,
min-max and Gauss-rank scaler states, seed-embedding vectors) is persisted.
:class:`~repro.tuners.campaign.TuningCampaign` checkpoints reuse the same
container (kind ``tuning_campaign``) via :func:`write_artifact_dir` /
:func:`read_artifact_dir`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Any, Dict, Optional, Union

import numpy as np

import repro
from repro.core.features import StaticFeatureExtractor
from repro.core.mga import MGAModel, ModalityConfig
from repro.core.tuner import DeviceMapper, MGATuner
from repro.frontend.openmp import OMPConfig
from repro.simulator.microarch import MicroArch

FORMAT_NAME = "repro.serve.artifact"
FORMAT_VERSION = 1
MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"

KIND_MODEL = "mga_model"
KIND_TUNER = "mga_tuner"
KIND_MAPPER = "device_mapper"
KIND_CAMPAIGN = "tuning_campaign"
KIND_STAGE = "pipeline_stage"
KIND_DRIFT = "drift_baseline"


class ArtifactError(RuntimeError):
    """Raised for malformed, incompatible or corrupted artifacts."""


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _extractor_config(extractor: StaticFeatureExtractor) -> Dict[str, Any]:
    vocab = extractor.seed_vocab
    return {
        "vector_dim": extractor.vector_dim,
        "seed": extractor.seed,
        "train_seed_embeddings": extractor.train_seed_embeddings,
        "entities": list(vocab.entity_vectors),
        "relations": list(vocab.relation_vectors),
    }


def _extractor_arrays(extractor: StaticFeatureExtractor) -> Dict[str, np.ndarray]:
    vocab = extractor.seed_vocab
    return {
        "extractor.entities": np.stack(list(vocab.entity_vectors.values())),
        "extractor.relations": np.stack(list(vocab.relation_vectors.values())),
    }


def _rebuild_extractor(config: Dict[str, Any],
                       arrays: Dict[str, np.ndarray]) -> StaticFeatureExtractor:
    extractor = StaticFeatureExtractor(
        vector_dim=int(config["vector_dim"]),
        train_seed_embeddings=bool(config.get("train_seed_embeddings", False)),
        seed=int(config.get("seed", 0)),
    )
    vocab = extractor.seed_vocab
    entity_matrix = np.asarray(arrays["extractor.entities"])
    relation_matrix = np.asarray(arrays["extractor.relations"])
    vocab.entity_vectors = {name: entity_matrix[i].copy()
                            for i, name in enumerate(config["entities"])}
    vocab.relation_vectors = {name: relation_matrix[i].copy()
                              for i, name in enumerate(config["relations"])}
    return extractor


def _config_to_dict(config: OMPConfig) -> Dict[str, Any]:
    return config.to_dict()


def _config_from_dict(data: Dict[str, Any]) -> OMPConfig:
    return OMPConfig.from_dict(data)


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def _model_payload(model: MGAModel):
    config = {"model": model.get_config()}
    arrays = {f"model.{k}": v for k, v in model.state_dict().items()}
    return config, arrays


def _tuner_payload(tuner: MGATuner):
    config = {
        "arch": dataclasses.asdict(tuner.arch),
        "configs": [_config_to_dict(c) for c in tuner.configs],
        "counter_names": tuner.counter_names,
        "modalities": dataclasses.asdict(tuner.modalities),
        "seed": tuner.seed,
        "model_kwargs": tuner.model_kwargs,
        "extractor": _extractor_config(tuner.extractor),
        "model": tuner.model.get_config() if tuner.model is not None else None,
    }
    arrays = dict(_extractor_arrays(tuner.extractor))
    if tuner.model is not None:
        arrays.update({f"model.{k}": v
                       for k, v in tuner.model.state_dict().items()})
    return config, arrays


def _mapper_payload(mapper: DeviceMapper):
    config = {
        "modalities": dataclasses.asdict(mapper.modalities),
        "seed": mapper.seed,
        "model_kwargs": mapper.model_kwargs,
        "extractor": _extractor_config(mapper.extractor),
        "model": mapper.model.get_config() if mapper.model is not None else None,
    }
    arrays = dict(_extractor_arrays(mapper.extractor))
    if mapper.model is not None:
        arrays.update({f"model.{k}": v
                       for k, v in mapper.model.state_dict().items()})
    return config, arrays


def write_artifact_dir(path: Union[str, os.PathLike], kind: str,
                       config: Dict[str, Any], arrays: Dict[str, np.ndarray],
                       metadata: Optional[Dict[str, Any]] = None) -> str:
    """Low-level artifact writer: manifest + sha256-checked array payload.

    Writes straight into ``path`` (created if missing).  Callers that need
    crash consistency stage into a temp directory and rename — see
    :meth:`repro.serve.registry.ModelRegistry.publish` and
    :meth:`repro.tuners.campaign.TuningCampaign.checkpoint`.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    arrays_path = os.path.join(path, ARRAYS_FILE)
    np.savez(arrays_path, **arrays)
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "repro_version": repro.__version__,
        "created_unix": time.time(),
        "config": config,
        "arrays_file": ARRAYS_FILE,
        "arrays_sha256": _sha256_file(arrays_path),
        "metadata": metadata or {},
    }
    with open(os.path.join(path, MANIFEST_FILE), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    return path


def payload_for(obj) -> tuple:
    """``(kind, config, arrays)`` payload of a serialisable object.

    The building block shared by :func:`save_artifact` and the experiment
    pipeline's stage codec (which embeds model payloads inside cached stage
    outputs instead of standalone artifact directories).
    """
    if isinstance(obj, MGATuner):
        config, arrays = _tuner_payload(obj)
        return KIND_TUNER, config, arrays
    if isinstance(obj, DeviceMapper):
        config, arrays = _mapper_payload(obj)
        return KIND_MAPPER, config, arrays
    if isinstance(obj, MGAModel):
        config, arrays = _model_payload(obj)
        return KIND_MODEL, config, arrays
    from repro.serve.drift import DriftBaseline
    if isinstance(obj, DriftBaseline):
        config, arrays = obj.to_payload()
        return KIND_DRIFT, config, arrays
    raise TypeError(f"cannot serialise objects of type {type(obj).__name__}")


def save_artifact(path: Union[str, os.PathLike], obj,
                  metadata: Optional[Dict[str, Any]] = None) -> str:
    """Serialise a model/tuner/mapper into an artifact directory.

    Returns the artifact path.  ``metadata`` (JSON-serialisable) is stored
    verbatim in the manifest and surfaced by the registry listings.
    """
    kind, config, arrays = payload_for(obj)
    return write_artifact_dir(path, kind, config, arrays, metadata=metadata)


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def read_manifest(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Parse and validate an artifact's manifest (no array I/O)."""
    manifest_path = os.path.join(os.fspath(path), MANIFEST_FILE)
    if not os.path.exists(manifest_path):
        raise ArtifactError(f"no {MANIFEST_FILE} under {path!r}")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != FORMAT_NAME:
        raise ArtifactError(f"not a {FORMAT_NAME} artifact: {path!r}")
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact format version "
            f"{manifest.get('format_version')!r} (expected {FORMAT_VERSION})")
    return manifest


def _load_arrays(path: str, manifest: Dict[str, Any]) -> Dict[str, np.ndarray]:
    arrays_path = os.path.join(path, manifest.get("arrays_file", ARRAYS_FILE))
    if not os.path.exists(arrays_path):
        raise ArtifactError(f"missing array payload {arrays_path!r}")
    digest = _sha256_file(arrays_path)
    if digest != manifest.get("arrays_sha256"):
        raise ArtifactError(
            f"integrity check failed for {arrays_path!r}: "
            f"sha256 {digest} != manifest {manifest.get('arrays_sha256')}")
    with np.load(arrays_path, allow_pickle=False) as data:
        return {key: data[key] for key in data.files}


def _restore_model(config: Optional[Dict[str, Any]],
                   arrays: Dict[str, np.ndarray]) -> Optional[MGAModel]:
    if config is None:
        return None
    model = MGAModel.from_config(config)
    state = {key[len("model."):]: value for key, value in arrays.items()
             if key.startswith("model.")}
    model.load_state_dict(state)
    return model


def read_artifact_dir(path: Union[str, os.PathLike]):
    """Low-level artifact reader: ``(manifest, arrays)``, integrity-checked."""
    path = os.fspath(path)
    manifest = read_manifest(path)
    return manifest, _load_arrays(path, manifest)


def load_artifact(path: Union[str, os.PathLike]):
    """Load an artifact directory back into its original object type."""
    manifest, arrays = read_artifact_dir(path)
    return restore_payload(manifest["kind"], manifest["config"], arrays)


def restore_payload(kind: str, config: Dict[str, Any],
                    arrays: Dict[str, np.ndarray]):
    """Inverse of :func:`payload_for` (plus the campaign/stage kinds)."""
    if kind == KIND_MODEL:
        return _restore_model(config["model"], arrays)

    if kind == KIND_CAMPAIGN:
        from repro.tuners.campaign import restore_campaign
        return restore_campaign(config, arrays)

    if kind == KIND_STAGE:
        from repro.pipeline.codec import decode_value
        return decode_value(config["output"], arrays)

    if kind == KIND_DRIFT:
        from repro.serve.drift import DriftBaseline
        return DriftBaseline.from_payload(config, arrays)

    modalities = ModalityConfig(**config["modalities"])
    extractor = _rebuild_extractor(config["extractor"], arrays)
    if kind == KIND_TUNER:
        tuner = MGATuner(
            arch=MicroArch(**config["arch"]),
            configs=[_config_from_dict(c) for c in config["configs"]],
            extractor=extractor,
            modalities=modalities,
            counter_names=config["counter_names"],
            seed=int(config["seed"]),
            **config["model_kwargs"],
        )
        tuner.model = _restore_model(config["model"], arrays)
        return tuner
    if kind == KIND_MAPPER:
        mapper = DeviceMapper(
            extractor=extractor,
            modalities=modalities,
            seed=int(config["seed"]),
            **config["model_kwargs"],
        )
        mapper.model = _restore_model(config["model"], arrays)
        return mapper
    raise ArtifactError(f"unknown artifact kind {kind!r}")


def load_artifact_as(path: Union[str, os.PathLike], cls):
    """Load an artifact and check it deserialised into ``cls``."""
    obj = load_artifact(path)
    if not isinstance(obj, cls):
        raise TypeError(f"artifact at {path} is a {type(obj).__name__}, "
                        f"not {cls.__name__}")
    return obj
