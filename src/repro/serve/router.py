"""Consistent-hash request router over health-checked replica groups.

:class:`ServeRouter` is the fleet-level front door of the serving stack.
Replica daemons (:class:`~repro.serve.daemon.ServeDaemon`, AF_UNIX or TCP)
are organised into **groups** — the replicas of one group serve the same
shard and load-balance round-robin; *which* group owns a request is decided
by consistent hashing of its ``(model, version)`` route key over a ring of
virtual nodes (:class:`HashRing`).  Adding or losing a group remaps only the
routes that hashed onto it; every other shard keeps its warm replicas.

Health is both active and passive:

* a **probe thread** sends each replica a ``stats`` request every
  ``probe_interval`` seconds; ``fail_after`` consecutive probe failures
  eject the replica from rotation, one successful probe re-admits it.  The
  probe's response (queue depth, shed count, latency percentiles — the
  daemon's extended ``stats`` op) is kept as the replica's last-known
  saturation snapshot and surfaced through the router's own ``stats``;
* a **forwarding failure** (connection refused/reset, timeout) marks the
  replica unhealthy immediately and the request retries once on another
  replica of the same group; re-admission still requires a probe success.

Admission control extends the daemon's bounded-queue load shedding to the
fleet: the router caps in-flight requests globally (``max_inflight``) and
per route (``max_inflight_per_route``) and answers excess load with the
same structured ``overloaded`` error the daemon uses — queues stay bounded
at every level, clients back off at either.

The router speaks the unmodified JSON-line protocol on both sides, so any
daemon client works against a router unchanged, and responses it relays are
byte-identical to what the chosen replica produced (only the caller's
request ``id`` is restored).
"""

from __future__ import annotations

import bisect
import collections
import hashlib
import os
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.serve.daemon import route_label
from repro.serve.protocol import (
    ADMIN_OPS,
    ERR_BAD_REQUEST,
    ERR_NO_REPLICA,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    INLINE_OPS,
    LineChannel,
    ProtocolError,
    connect_address,
    create_listener,
    error_response,
    format_address,
    ok_response,
    parse_address,
    percentile,
    validate_request,
)

DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A 64-bit hash that is identical across processes and PYTHONHASHSEED."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing: keys to group names via a virtual-node ring."""

    def __init__(self, groups: Iterable[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self.groups = sorted(set(groups))
        points: List[Tuple[int, str]] = []
        for group in self.groups:
            points.extend((stable_hash(f"{group}#{vnode}"), group)
                          for vnode in range(self.vnodes))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def lookup(self, key: str) -> Optional[str]:
        """The group owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        return self._points[index % len(self._points)][1]


# ----------------------------------------------------------------------
# multiplexed backend connection
# ----------------------------------------------------------------------
class _Waiter:
    __slots__ = ("event", "response", "error")

    def __init__(self):
        self.event = threading.Event()
        self.response: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None


class _MuxChannel:
    """One persistent connection multiplexing concurrent requests by id.

    Many router threads ``submit()`` concurrently; a single reader thread
    matches the (possibly out-of-order) responses back to their waiters.
    A broken connection fails every outstanding waiter and is re-dialled
    lazily on the next submit.
    """

    def __init__(self, address: str, connect_timeout: float = 5.0):
        self.address = address
        self.connect_timeout = connect_timeout
        self._lock = threading.Lock()
        self._channel: Optional[LineChannel] = None
        self._pending: Dict[str, _Waiter] = {}
        self._next_id = 0

    def submit(self, document: Dict[str, Any],
               timeout: Optional[float]) -> Dict[str, Any]:
        """Send one request and block for its response."""
        waiter = _Waiter()
        with self._lock:
            if self._channel is None:
                channel = LineChannel(
                    connect_address(self.address,
                                    timeout=self.connect_timeout))
                self._channel = channel
                threading.Thread(target=self._read_loop, args=(channel,),
                                 name=f"repro-router-read[{self.address}]",
                                 daemon=True).start()
            request_id = f"x{self._next_id}"
            self._next_id += 1
            self._pending[request_id] = waiter
            wire = dict(document)
            wire["id"] = request_id
            try:
                self._channel.send(wire)
            except OSError:
                self._teardown_locked(ConnectionError(
                    f"lost connection to {self.address}"))
                raise
        if not waiter.event.wait(timeout):
            with self._lock:
                self._pending.pop(request_id, None)
            raise TimeoutError(f"no response from {self.address} within "
                               f"{timeout}s")
        if waiter.error is not None:
            raise waiter.error
        return waiter.response

    def _read_loop(self, channel: LineChannel) -> None:
        while True:
            try:
                response = channel.recv()
            except (OSError, ProtocolError):
                response = None
            with self._lock:
                if self._channel is not channel:
                    return               # superseded by a reconnect
                if response is None:
                    self._teardown_locked(ConnectionError(
                        f"{self.address} closed the connection"))
                    return
                waiter = self._pending.pop(response.get("id"), None)
            if waiter is not None:
                waiter.response = response
                waiter.event.set()

    def _teardown_locked(self, error: BaseException) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        pending, self._pending = self._pending, {}
        for waiter in pending.values():
            waiter.error = error
            waiter.event.set()

    def close(self) -> None:
        with self._lock:
            self._teardown_locked(ConnectionError("channel closed"))


# ----------------------------------------------------------------------
# replicas and the router
# ----------------------------------------------------------------------
class Replica:
    """Router-side handle of one replica daemon."""

    def __init__(self, group: str, address: str, connect_timeout: float):
        self.group = group
        self.address = address
        self.channel = _MuxChannel(address, connect_timeout=connect_timeout)
        self.healthy = True              # optimistic until a probe says no
        self.consecutive_failures = 0
        self.ejections = 0
        self.forwarded = 0
        self.errors = 0
        self.last_probe: Optional[Dict[str, Any]] = None

    def describe(self) -> Dict[str, Any]:
        return {"group": self.group, "healthy": self.healthy,
                "consecutive_failures": self.consecutive_failures,
                "ejections": self.ejections, "forwarded": self.forwarded,
                "errors": self.errors, "last_probe": self.last_probe}


def parse_replica_spec(spec: Union[str, Tuple[str, str]]) -> Tuple[str, str]:
    """``(group, address)`` from ``"group=address"`` / ``"address"`` forms.

    An address without an explicit group is its own group of one (each
    replica owns a distinct shard range); repeated group names pool
    replicas into one load-balanced shard owner.
    """
    if isinstance(spec, tuple):
        group, address = spec
        return str(group), str(address)
    group, sep, address = spec.partition("=")
    if sep and group and not group.startswith(("tcp:", "unix:", "/", ".")):
        return group, address
    return spec, spec


class ServeRouter:
    """Fleet front door: shard routing + health + admission (module doc)."""

    def __init__(self, address: str,
                 replicas: Sequence[Union[str, Tuple[str, str]]],
                 probe_interval: float = 0.5, fail_after: int = 3,
                 probe_timeout: float = 5.0, connect_timeout: float = 5.0,
                 request_timeout: float = 600.0, max_inflight: int = 256,
                 max_inflight_per_route: Optional[int] = None,
                 vnodes: int = DEFAULT_VNODES, forward_threads: int = 32):
        if not replicas:
            raise ValueError("a router needs at least one replica")
        if fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.scheme, self._location = parse_address(address)
        self.address = format_address(self.scheme, self._location)
        self.probe_interval = float(probe_interval)
        self.fail_after = int(fail_after)
        self.probe_timeout = float(probe_timeout)
        self.request_timeout = float(request_timeout)
        self.max_inflight = int(max_inflight)
        self.max_inflight_per_route = (int(max_inflight_per_route)
                                       if max_inflight_per_route is not None
                                       else max(1, self.max_inflight // 2))
        self.vnodes = int(vnodes)
        self.forward_threads = int(forward_threads)

        self._replicas: List[Replica] = []
        seen = set()
        for spec in replicas:
            group, replica_address = parse_replica_spec(spec)
            if replica_address in seen:
                raise ValueError(f"duplicate replica {replica_address!r}")
            seen.add(replica_address)
            self._replicas.append(Replica(group, replica_address,
                                          connect_timeout))
        self._groups: "collections.OrderedDict[str, List[Replica]]" = \
            collections.OrderedDict()
        for replica in self._replicas:
            self._groups.setdefault(replica.group, []).append(replica)

        self._lock = threading.Lock()
        self._ring = HashRing(self._groups, vnodes=self.vnodes)
        self._rr: Dict[str, int] = {group: 0 for group in self._groups}
        self._inflight_total = 0
        self._inflight_route: Dict[str, int] = {}
        self._listener = None
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._executor = None
        self._running = False
        self._started_at = 0.0

        self._stats_lock = threading.Lock()
        self._received = 0
        self._forwarded = 0
        self._completed = 0
        self._errors = 0
        self._shed = 0
        self._no_replica = 0
        self._retried = 0
        self._per_route: Dict[str, Dict[str, int]] = {}
        self._latencies: "collections.deque[float]" = \
            collections.deque(maxlen=4096)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def replicas(self) -> List[Replica]:
        return list(self._replicas)

    def start(self) -> "ServeRouter":
        from concurrent.futures import ThreadPoolExecutor

        if self._running:
            raise RuntimeError("router already started")
        self._listener, self.address = create_listener(self.address)
        self._executor = ThreadPoolExecutor(
            max_workers=self.forward_threads,
            thread_name_prefix="repro-router-fwd")
        self._running = True
        self._started_at = time.perf_counter()
        for target, name in ((self._accept_loop, "accept"),
                             (self._probe_loop, "probe")):
            thread = threading.Thread(target=target,
                                      name=f"repro-router-{name}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self) -> None:
        """Stop the router (replicas keep running; they are not owned)."""
        if not self._running:
            return
        self._running = False
        # wake the accept thread before closing: a close() alone leaves it
        # blocked in accept(), and the in-kernel reference it holds keeps
        # the port in LISTEN after we exit (EADDRINUSE on restart)
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self.scheme == "unix":
            try:
                os.unlink(self._location)
            except OSError:
                pass
        self._executor.shutdown(wait=True)
        for replica in self._replicas:
            replica.channel.close()
        # hang up on connected clients so they observe the stop instead of
        # talking to a zombie (their readers see EOF and reconnect)
        with self._conns_lock:
            open_conns = list(self._conns)
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "ServeRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # front-end
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if self.scheme == "tcp":
                try:
                    conn.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                    # let a restarted router rebind this port while old
                    # client connections are still draining
                    conn.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEADDR, 1)
                except OSError:
                    pass
            threading.Thread(target=self._connection_loop, args=(conn,),
                             name="repro-router-conn", daemon=True).start()

    def _connection_loop(self, conn) -> None:
        channel = LineChannel(conn)
        write_lock = threading.Lock()
        with self._conns_lock:
            self._conns.add(conn)

        def reply(document: Dict[str, Any]) -> None:
            try:
                with write_lock:
                    channel.send(document)
            except OSError:
                pass

        try:
            while True:
                try:
                    document = channel.recv()
                except ProtocolError as exc:
                    reply(error_response(None, ERR_BAD_REQUEST, str(exc)))
                    return
                except OSError:
                    return
                if document is None:
                    return
                self._handle_request(document, reply)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            channel.close()

    def _handle_request(self, document: Dict[str, Any], reply) -> None:
        try:
            request_id, op = validate_request(document)
        except ProtocolError as exc:
            reply(error_response(document.get("id"), ERR_BAD_REQUEST,
                                 str(exc)))
            return
        with self._stats_lock:
            self._received += 1
        if op in INLINE_OPS:
            if op == "ping":
                reply(ok_response(request_id, {"pong": True, "router": True}))
            elif op == "stats":
                reply(ok_response(request_id, self.stats()))
            else:                        # shutdown: the router, not the fleet
                reply(ok_response(request_id, {"stopped": True,
                                               "router": True}))
                threading.Thread(target=self.shutdown,
                                 name="repro-router-shutdown",
                                 daemon=True).start()
            return
        if op in ADMIN_OPS:
            # lifecycle ops address every replica of the shard owner: all
            # serving copies of the model must flip/shadow together
            try:
                if not self._running:
                    raise RuntimeError("router is shutting down")
                self._executor.submit(self._forward_admin, request_id,
                                      document, reply)
            except RuntimeError:
                reply(error_response(request_id, ERR_SHUTTING_DOWN,
                                     "router is shutting down"))
            return
        route = self._route_key(document, op)
        if not self._admit(route):
            with self._stats_lock:
                self._shed += 1
                self._route_stats_locked(route)["shed"] += 1
            reply(error_response(
                request_id, ERR_OVERLOADED,
                f"router in-flight limit reached for route {route!r}",
                route=route, scope="router",
                max_inflight=self.max_inflight,
                max_inflight_per_route=self.max_inflight_per_route))
            return
        started = time.perf_counter()
        try:
            if not self._running:
                raise RuntimeError("router is shutting down")
            self._executor.submit(self._forward, route, request_id, document,
                                  reply, started)
        except RuntimeError:             # executor shut down under us
            self._release(route)
            reply(error_response(request_id, ERR_SHUTTING_DOWN,
                                 "router is shutting down"))

    @staticmethod
    def _route_key(document: Dict[str, Any], op: str) -> str:
        if op in ("tune", "map"):
            return route_label(("model", document["model"],
                                document.get("version")))
        if op == "session":
            return "session"
        return "debug"

    # ------------------------------------------------------------------
    # admission control (fleet-level bounded queues)
    # ------------------------------------------------------------------
    def _admit(self, route: str) -> bool:
        with self._lock:
            route_inflight = self._inflight_route.get(route, 0)
            if (self._inflight_total >= self.max_inflight
                    or route_inflight >= self.max_inflight_per_route):
                return False
            self._inflight_total += 1
            self._inflight_route[route] = route_inflight + 1
            return True

    def _release(self, route: str) -> None:
        with self._lock:
            self._inflight_total -= 1
            remaining = self._inflight_route.get(route, 1) - 1
            if remaining:
                self._inflight_route[route] = remaining
            else:
                self._inflight_route.pop(route, None)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def _forward(self, route: str, request_id, document: Dict[str, Any],
                 reply, started: float) -> None:
        try:
            excluded: set = set()
            for attempt in range(2):
                replica = self._pick_replica(route, excluded)
                if replica is None:
                    break
                try:
                    response = replica.channel.submit(document,
                                                      self.request_timeout)
                except (OSError, ConnectionError, TimeoutError):
                    self._mark_failed(replica)
                    excluded.add(replica.address)
                    if attempt == 0:
                        with self._stats_lock:
                            self._retried += 1
                    continue
                response = dict(response)
                response["id"] = request_id
                latency_ms = 1e3 * (time.perf_counter() - started)
                with self._stats_lock:
                    replica.forwarded += 1
                    self._forwarded += 1
                    self._completed += 1
                    self._errors += int(not response.get("ok"))
                    self._latencies.append(latency_ms)
                    self._route_stats_locked(route)["forwarded"] += 1
                reply(response)
                return
            with self._stats_lock:
                self._no_replica += 1
                self._errors += 1
            reply(error_response(
                request_id, ERR_NO_REPLICA,
                f"no healthy replica for route {route!r}", route=route))
        finally:
            self._release(route)

    def _forward_admin(self, request_id, document: Dict[str, Any],
                       reply) -> None:
        """Fan a swap/shadow op out to every healthy replica of the group
        that owns the model's latest-route, collecting per-replica results.
        """
        route = route_label(("model", document["model"], None))
        with self._lock:
            group = self._ring.lookup(route)
            members = ([replica for replica in self._groups[group]
                        if replica.healthy] if group is not None else [])
        if not members:
            with self._stats_lock:
                self._no_replica += 1
                self._errors += 1
            reply(error_response(
                request_id, ERR_NO_REPLICA,
                f"no healthy replica for route {route!r}", route=route))
            return
        results: Dict[str, Dict[str, Any]] = {}
        succeeded = 0
        for replica in members:
            try:
                response = replica.channel.submit(document,
                                                  self.request_timeout)
            except (OSError, ConnectionError, TimeoutError) as exc:
                self._mark_failed(replica)
                results[replica.address] = {
                    "ok": False,
                    "error": {"code": ERR_NO_REPLICA, "message": str(exc)}}
                continue
            entry: Dict[str, Any] = {"ok": bool(response.get("ok"))}
            if response.get("ok"):
                entry["result"] = response.get("result", {})
                succeeded += 1
            else:
                entry["error"] = response.get("error", {})
            results[replica.address] = entry
        with self._stats_lock:
            self._forwarded += len(members)
            self._completed += 1
            self._errors += int(succeeded == 0)
            self._route_stats_locked(route)["forwarded"] += 1
        if succeeded == 0:
            first_error = next(iter(results.values())).get("error", {})
            reply(error_response(
                request_id,
                first_error.get("code", ERR_NO_REPLICA),
                first_error.get("message",
                                "admin op failed on every replica"),
                group=group, replicas=results))
            return
        reply(ok_response(request_id, {"group": group,
                                       "replicas": results,
                                       "succeeded": succeeded,
                                       "attempted": len(members)}))

    def _pick_replica(self, route: str, excluded: set) -> Optional[Replica]:
        with self._lock:
            group = self._ring.lookup(route)
            if group is None:
                return None
            members = [replica for replica in self._groups[group]
                       if replica.healthy
                       and replica.address not in excluded]
            if not members:
                return None
            turn = self._rr[group]
            self._rr[group] = turn + 1
            return members[turn % len(members)]

    def _mark_failed(self, replica: Replica) -> None:
        """Passive health: a forwarding failure ejects immediately."""
        with self._lock:
            replica.errors += 1
            replica.consecutive_failures += 1
            if replica.healthy:
                replica.healthy = False
                replica.ejections += 1
                self._rebuild_ring_locked()

    # ------------------------------------------------------------------
    # active health probes
    # ------------------------------------------------------------------
    def _probe_loop(self) -> None:
        while self._running:
            for replica in self._replicas:
                if not self._running:
                    return
                self._probe_one(replica)
            time.sleep(self.probe_interval)

    def _probe_one(self, replica: Replica) -> None:
        try:
            response = replica.channel.submit({"op": "stats"},
                                              self.probe_timeout)
            if not response.get("ok"):
                raise ConnectionError("stats probe returned an error")
        except Exception:
            with self._lock:
                replica.consecutive_failures += 1
                if (replica.healthy
                        and replica.consecutive_failures >= self.fail_after):
                    replica.healthy = False
                    replica.ejections += 1
                    self._rebuild_ring_locked()
            return
        result = response.get("result", {})
        lifecycle = result.get("lifecycle") or {}
        snapshot = {
            "queue_depth": result.get("queue", {}).get("depth"),
            "queue_per_route": result.get("queue", {}).get("per_route"),
            "shed": result.get("requests", {}).get("shed"),
            "p99_ms": result.get("latency_ms", {}).get("p99"),
            "p999_ms": result.get("latency_ms", {}).get("p999"),
            "workers_alive": result.get("workers", {}).get("alive"),
            "generation": lifecycle.get("generation"),
            "swaps": lifecycle.get("swaps"),
            "drift": (result.get("drift") or {}).get("routes") or {},
        }
        with self._lock:
            replica.consecutive_failures = 0
            replica.last_probe = snapshot
            if not replica.healthy:
                replica.healthy = True           # re-admission
                self._rebuild_ring_locked()

    def _rebuild_ring_locked(self) -> None:
        healthy_groups = [group for group, members in self._groups.items()
                          if any(replica.healthy for replica in members)]
        self._ring = HashRing(healthy_groups, vnodes=self.vnodes)

    # ------------------------------------------------------------------
    def _route_stats_locked(self, route: str) -> Dict[str, int]:
        stats = self._per_route.get(route)
        if stats is None:
            stats = self._per_route[route] = {"forwarded": 0, "shed": 0}
        return stats

    def owner_of(self, route: str) -> Optional[str]:
        """The group currently owning ``route`` (for tests/debugging)."""
        with self._lock:
            return self._ring.lookup(route)

    def stats(self) -> Dict[str, Any]:
        """Fleet view: ring, per-replica health + saturation, admission."""
        with self._lock:
            replicas = {replica.address: replica.describe()
                        for replica in self._replicas}
            healthy_groups = list(self._ring.groups)
            inflight_total = self._inflight_total
            inflight_route = dict(self._inflight_route)
        with self._stats_lock:
            latencies = sorted(self._latencies)
            per_route = {route: dict(stats)
                         for route, stats in self._per_route.items()}
            snapshot = {
                "router": True,
                "address": self.address,
                "transport": self.scheme,
                "uptime_s": time.perf_counter() - self._started_at,
                "requests": {"received": self._received,
                             "forwarded": self._forwarded,
                             "completed": self._completed,
                             "errors": self._errors,
                             "shed": self._shed,
                             "no_replica": self._no_replica,
                             "retried": self._retried},
                "inflight": {"total": inflight_total,
                             "per_route": inflight_route,
                             "max_inflight": self.max_inflight,
                             "max_inflight_per_route":
                                 self.max_inflight_per_route},
                "latency_ms": {
                    "count": len(latencies),
                    "mean": (sum(latencies) / len(latencies)
                             if latencies else 0.0),
                    "p50": percentile(latencies, 0.50),
                    "p99": percentile(latencies, 0.99),
                    "p999": percentile(latencies, 0.999),
                },
                "per_route": per_route,
                "ring": {"groups": sorted(self._groups),
                         "healthy_groups": healthy_groups,
                         "vnodes": self.vnodes},
                "replicas": replicas,
                "drift": {"routes": self._fleet_drift(replicas)},
            }
        return snapshot

    @staticmethod
    def _fleet_drift(replicas: Dict[str, Dict[str, Any]]
                     ) -> Dict[str, Dict[str, Any]]:
        """Per-route drift across the fleet, from the last probe snapshots.

        Shards are disjoint so routes rarely collide across replicas; when
        two replicas of one group report the same route, the snapshot with
        the larger sample count wins (probes are eventually consistent).
        """
        routes: Dict[str, Dict[str, Any]] = {}
        for described in replicas.values():
            probe = described.get("last_probe") or {}
            for route, summary in (probe.get("drift") or {}).items():
                known = routes.get(route)
                if (known is None
                        or summary.get("count", 0) >= known.get("count", 0)):
                    routes[route] = summary
        return routes
