"""Model persistence, registry and batched serving for trained tuners.

The serving subsystem takes a trained tuner from "in-memory object" to
"deployable artifact behind a batched service":

* :mod:`repro.serve.artifacts` — versioned save/load round trip (weights,
  fitted scalers, modality/arch/config-space metadata) with SHA-256
  integrity checks;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`, a named + versioned
  model store over a directory tree;
* :mod:`repro.serve.engine` — :class:`InferenceEngine`, thread-safe
  micro-batching of concurrent requests into single
  :meth:`~repro.core.mga.MGAModel.predict` calls with an LRU cache of static
  features;
* :mod:`repro.serve.service` — :class:`TuningService`, the request/response
  façade with per-model routing and latency/throughput counters;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, a socket-served
  multi-worker front-end: deadline-aware micro-batching, bounded queues
  with load shedding, a self-healing process pool and drain-on-shutdown;
  serves ``AF_UNIX`` paths or ``tcp://HOST:PORT`` (same protocol);
* :mod:`repro.serve.router` — :class:`ServeRouter`, the multi-host
  distribution layer: consistent-hash sharding by ``(model, version)``
  over health-checked replica groups with fleet-level admission control;
* :mod:`repro.serve.lifecycle` — :class:`LifecycleManager`, the online
  model lifecycle: registry-generation watch, zero-drain hot-swap with
  pin/rollback, shadow deploys with prediction diffing and auto
  promote/abort, and per-route drift aggregation;
* :mod:`repro.serve.drift` — :class:`DriftBaseline` /
  :class:`DriftMonitor`, a streaming input-drift sketch (per-feature
  quantile envelopes + unseen-vocabulary counters) seeded from the
  training set at publish time and scored on live traffic;
* :mod:`repro.serve.loadgen` — open-loop Poisson load generation with
  latency histograms and SLO attainment (:func:`~repro.serve.loadgen.
  open_loop`);
* :mod:`repro.serve.client` — :class:`DaemonClient`, the JSON-line socket
  client mirroring the :class:`TuningService` surface, with opt-in bounded
  retry on transient connect failures and ``overloaded`` sheds;
* :mod:`repro.serve.faults` — injectable :class:`FaultPlan` schedules
  (dropped/delayed/duplicated frames, stalled heartbeats, scheduled worker
  SIGKILL) consulted by the transport and the campaign fleet for chaos
  testing;
* ``python -m repro.serve`` — a small CLI to publish, query and serve
  models (``daemon`` / ``router`` / ``request`` / ``loadgen`` talk the
  socket protocol).
"""

from repro.serve.artifacts import (
    ArtifactError,
    load_artifact,
    payload_for,
    read_manifest,
    restore_payload,
    save_artifact,
)
from repro.serve.client import DaemonClient, DaemonError
from repro.serve.daemon import ServeDaemon
from repro.serve.drift import DriftBaseline, DriftMonitor, baseline_for
from repro.serve.faults import FaultPlan
from repro.serve.engine import InferenceEngine, PendingResult
from repro.serve.lifecycle import LifecycleManager, ShadowPolicy, SwapError
from repro.serve.loadgen import open_loop
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.router import HashRing, ServeRouter
from repro.serve.service import (
    CampaignRequest,
    CampaignResponse,
    MapRequest,
    MapResponse,
    TuneRequest,
    TuneResponse,
    TuningService,
)

__all__ = [
    "ArtifactError",
    "save_artifact",
    "load_artifact",
    "payload_for",
    "restore_payload",
    "read_manifest",
    "ModelRegistry",
    "ModelVersion",
    "InferenceEngine",
    "PendingResult",
    "ServeDaemon",
    "ServeRouter",
    "HashRing",
    "LifecycleManager",
    "ShadowPolicy",
    "SwapError",
    "DriftBaseline",
    "DriftMonitor",
    "baseline_for",
    "open_loop",
    "DaemonClient",
    "DaemonError",
    "FaultPlan",
    "TuningService",
    "TuneRequest",
    "TuneResponse",
    "MapRequest",
    "MapResponse",
    "CampaignRequest",
    "CampaignResponse",
]
