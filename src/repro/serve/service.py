"""Request/response façade over the registry and the batched engines.

:class:`TuningService` is the deployable entry point: it owns a
:class:`~repro.serve.registry.ModelRegistry`, lazily loads each requested
``model`` (name, optional version) into a per-model
:class:`~repro.serve.engine.InferenceEngine`, resolves kernels by their
``suite/name`` uid through :mod:`repro.kernels`, and keeps service-level
latency/throughput counters.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.tuner import DeviceMapper, MGATuner
from repro.kernels import registry as kernel_registry
from repro.serve.engine import InferenceEngine
from repro.serve.registry import ModelRegistry


@dataclasses.dataclass(frozen=True)
class TuneRequest:
    """One OpenMP tuning request.

    At most one of ``scale`` / ``target_bytes`` sizes the input (setting both
    is rejected; neither means ``scale=1.0``).  With ``target_bytes`` the
    scale solving the kernel's working-set equation is used (the natural
    remote-caller interface: "this kernel at 32 MB").
    """

    model: str
    kernel: str                       # kernel uid, e.g. "polybench/gemm"
    scale: Optional[float] = None
    target_bytes: Optional[float] = None
    version: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class TuneResponse:
    model: str
    version: int
    kernel: str
    scale: float
    config_label: str                 # e.g. "t8/static/cauto"
    num_threads: int
    schedule: str
    chunk_size: Optional[int]
    counters: Dict[str, float]
    latency_ms: float


@dataclasses.dataclass(frozen=True)
class MapRequest:
    """One OpenCL CPU/GPU device-mapping request."""

    model: str
    kernel: str
    transfer_bytes: float
    wgsize: int
    version: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class MapResponse:
    model: str
    version: int
    kernel: str
    device: str                       # "cpu" | "gpu"
    label: int
    latency_ms: float


class TuningService:
    """Route tuning/mapping requests to registry-published models."""

    def __init__(self, registry: ModelRegistry, max_batch_size: int = 32,
                 max_wait_ms: float = 2.0, cache_size: int = 512):
        self.registry = registry
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self._engines: Dict[Tuple[str, int], InferenceEngine] = {}
        self._loading: Dict[Tuple[str, int], threading.Lock] = {}
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._latency_sum = 0.0
        self._per_model: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def engine(self, model: str, version: Optional[int] = None
               ) -> Tuple[InferenceEngine, int]:
        """The (cached) engine serving one published model version.

        Returns the engine together with the concrete version it serves, so
        responses report the version that actually answered.  Artifact
        loading happens outside the service-wide lock (under a per-version
        lock), so a cold load never stalls requests to warm models.
        """
        resolved = version if version is not None \
            else self.registry.latest(model)
        if resolved is None:
            raise KeyError(f"model {model!r} has no published versions")
        key = (model, int(resolved))
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine, key[1]
            load_lock = self._loading.setdefault(key, threading.Lock())
        with load_lock:
            with self._lock:
                engine = self._engines.get(key)
            if engine is None:
                predictor = self.registry.load(model, key[1])
                engine = InferenceEngine(
                    predictor, max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms, cache_size=self.cache_size)
                with self._lock:
                    self._engines[key] = engine
                    self._loading.pop(key, None)
        return engine, key[1]

    @staticmethod
    def _resolve_kernel(uid: str):
        return kernel_registry.get_kernel(uid)

    def _record(self, model: str, started: float, failed: bool) -> float:
        latency_ms = 1e3 * (time.perf_counter() - started)
        with self._stats_lock:
            self._requests += 1
            self._errors += int(failed)
            self._latency_sum += latency_ms
            self._per_model[model] = self._per_model.get(model, 0) + 1
        return latency_ms

    # ------------------------------------------------------------------
    def tune(self, request: TuneRequest) -> TuneResponse:
        """Tune one kernel with a published :class:`MGATuner`."""
        started = time.perf_counter()
        try:
            if request.scale is not None and request.target_bytes is not None:
                raise ValueError("set only one of scale / target_bytes")
            engine, version = self.engine(request.model, request.version)
            if not isinstance(engine.predictor, MGATuner):
                raise TypeError(f"model {request.model!r} is not an OpenMP "
                                f"tuner")
            spec = self._resolve_kernel(request.kernel)
            if request.scale is not None:
                scale = float(request.scale)
            elif request.target_bytes is not None:
                scale = spec.scale_for_bytes(float(request.target_bytes))
            else:
                scale = 1.0
            config, counters = engine.tune(spec, scale)
        except BaseException:
            self._record(request.model, started, failed=True)
            raise
        latency_ms = self._record(request.model, started, failed=False)
        return TuneResponse(
            model=request.model, version=version, kernel=request.kernel,
            scale=scale, config_label=config.label(),
            num_threads=config.num_threads, schedule=config.schedule.value,
            chunk_size=config.chunk_size, counters=counters,
            latency_ms=latency_ms)

    def map_device(self, request: MapRequest) -> MapResponse:
        """Map one kernel with a published :class:`DeviceMapper`."""
        started = time.perf_counter()
        try:
            engine, version = self.engine(request.model, request.version)
            if not isinstance(engine.predictor, DeviceMapper):
                raise TypeError(f"model {request.model!r} is not a device "
                                f"mapper")
            spec = self._resolve_kernel(request.kernel)
            label = engine.map_device(spec, request.transfer_bytes,
                                      request.wgsize)
        except BaseException:
            self._record(request.model, started, failed=True)
            raise
        latency_ms = self._record(request.model, started, failed=False)
        return MapResponse(
            model=request.model, version=version, kernel=request.kernel,
            device="cpu" if label == 0 else "gpu", label=label,
            latency_ms=latency_ms)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service-level counters plus the per-engine batching/cache stats."""
        with self._stats_lock:
            snapshot: Dict[str, Any] = {
                "requests": self._requests,
                "errors": self._errors,
                "mean_latency_ms": self._latency_sum / max(1, self._requests),
                "per_model_requests": dict(self._per_model),
            }
        with self._lock:
            snapshot["engines"] = {
                f"{name}@{version}": engine.stats()
                for (name, version), engine in self._engines.items()
            }
        return snapshot

    def close(self) -> None:
        with self._lock:
            engines, self._engines = list(self._engines.values()), {}
        for engine in engines:
            engine.close()

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
