"""Request/response façade over the registry and the batched engines.

:class:`TuningService` is the deployable entry point: it owns a
:class:`~repro.serve.registry.ModelRegistry`, lazily loads each requested
``model`` (name, optional version) into a per-model
:class:`~repro.serve.engine.InferenceEngine`, resolves kernels by their
``suite/name`` uid through :mod:`repro.kernels`, and keeps service-level
latency/throughput counters.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.tuner import DeviceMapper, MGATuner
from repro.kernels import registry as kernel_registry
from repro.serve.engine import InferenceEngine
from repro.serve.registry import ModelRegistry
from repro.simulator.microarch import get_microarch
from repro.tuners.campaign import SimObjectiveSpec, TuningCampaign, make_tuner
from repro.tuners.space import full_search_space, thread_search_space


@dataclasses.dataclass(frozen=True)
class TuneRequest:
    """One OpenMP tuning request.

    At most one of ``scale`` / ``target_bytes`` sizes the input (setting both
    is rejected; neither means ``scale=1.0``).  With ``target_bytes`` the
    scale solving the kernel's working-set equation is used (the natural
    remote-caller interface: "this kernel at 32 MB").
    """

    model: str
    kernel: str                       # kernel uid, e.g. "polybench/gemm"
    scale: Optional[float] = None
    target_bytes: Optional[float] = None
    version: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class TuneResponse:
    model: str
    version: int
    kernel: str
    scale: float
    config_label: str                 # e.g. "t8/static/cauto"
    num_threads: int
    schedule: str
    chunk_size: Optional[int]
    counters: Dict[str, float]
    latency_ms: float


@dataclasses.dataclass(frozen=True)
class CampaignRequest:
    """One search-based tuning campaign over the simulator objective.

    Unlike :class:`TuneRequest` (a single model inference), a campaign
    actually *searches*: ``tuner`` names a registered black-box strategy,
    ``workers`` sizes the evaluation pool, and ``checkpoint`` / ``resume``
    give interrupted campaigns exact continuation semantics.
    """

    kernel: Optional[str] = None      # kernel uid, e.g. "polybench/gemm";
                                      # optional on resume (checkpoint has it)
    tuner: str = "random"
    budget: int = 20
    arch: str = "skylake_4114"
    space: str = "full"               # "full" | "threads"
    scale: float = 1.0
    noise: float = 0.015
    sim_seed: int = 1234
    repeats: int = 1
    seed: int = 0
    workers: int = 1
    batch_size: Optional[int] = None
    checkpoint: Optional[str] = None
    resume: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class CampaignResponse:
    kernel: str
    tuner: str
    arch: str
    best_label: str                   # e.g. "t8/static/c64"
    best_time: float
    default_time: float
    speedup_over_default: float
    evaluations: int
    batches: int
    workers: int
    wall_seconds: float
    checkpoint: Optional[str]
    finished: bool


@dataclasses.dataclass(frozen=True)
class MapRequest:
    """One OpenCL CPU/GPU device-mapping request."""

    model: str
    kernel: str
    transfer_bytes: float
    wgsize: int
    version: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class MapResponse:
    model: str
    version: int
    kernel: str
    device: str                       # "cpu" | "gpu"
    label: int
    latency_ms: float


# ----------------------------------------------------------------------
# request semantics shared by the in-process service and the daemon
# workers — one definition, so the two serving paths cannot drift
# ----------------------------------------------------------------------
def resolve_tune_scale(spec, scale: Optional[float],
                       target_bytes: Optional[float]) -> float:
    """The input scale of a tune request (``scale`` xor ``target_bytes``)."""
    if scale is not None and target_bytes is not None:
        raise ValueError("set only one of scale / target_bytes")
    if target_bytes is not None:
        return spec.scale_for_bytes(float(target_bytes))
    return 1.0 if scale is None else float(scale)


def require_tuner(predictor, model: str) -> None:
    if not isinstance(predictor, MGATuner):
        raise TypeError(f"model {model!r} is not an OpenMP tuner")


def require_mapper(predictor, model: str) -> None:
    if not isinstance(predictor, DeviceMapper):
        raise TypeError(f"model {model!r} is not a device mapper")


def tune_response_fields(model: str, version: int, kernel: str, scale: float,
                         config, counters) -> Dict[str, Any]:
    """Everything of a :class:`TuneResponse` except ``latency_ms``."""
    return {"model": model, "version": version, "kernel": kernel,
            "scale": scale, "config_label": config.label(),
            "num_threads": config.num_threads,
            "schedule": config.schedule.value,
            "chunk_size": config.chunk_size, "counters": dict(counters)}


def map_response_fields(model: str, version: int, kernel: str,
                        label: int) -> Dict[str, Any]:
    """Everything of a :class:`MapResponse` except ``latency_ms``."""
    return {"model": model, "version": version, "kernel": kernel,
            "device": "cpu" if int(label) == 0 else "gpu",
            "label": int(label)}


class TuningService:
    """Route tuning/mapping requests to registry-published models."""

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 max_batch_size: int = 32,
                 max_wait_ms: float = 2.0, cache_size: int = 512,
                 daemon: Optional[str] = None):
        self.registry = registry
        #: socket path of a running serve daemon; when set, ``tune`` and
        #: ``map_device`` are forwarded there instead of loading models
        #: in-process (campaigns always run locally — they are compute, not
        #: model serving)
        self.daemon = daemon
        self._daemon_local = threading.local()
        self._daemon_clients: list = []      # every client, for close()
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self._engines: Dict[Tuple[str, int], InferenceEngine] = {}
        self._loading: Dict[Tuple[str, int], threading.Lock] = {}
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._latency_sum = 0.0
        self._per_model: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def engine(self, model: str, version: Optional[int] = None
               ) -> Tuple[InferenceEngine, int]:
        """The (cached) engine serving one published model version.

        Returns the engine together with the concrete version it serves, so
        responses report the version that actually answered.  Artifact
        loading happens outside the service-wide lock (under a per-version
        lock), so a cold load never stalls requests to warm models.
        """
        if self.registry is None:
            raise RuntimeError("service was created without a model registry "
                               "(campaign-only mode)")
        resolved = version if version is not None \
            else self.registry.latest(model)
        if resolved is None:
            raise KeyError(f"model {model!r} has no published versions")
        key = (model, int(resolved))
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine, key[1]
            load_lock = self._loading.setdefault(key, threading.Lock())
        with load_lock:
            with self._lock:
                engine = self._engines.get(key)
            if engine is None:
                predictor = self.registry.load(model, key[1])
                engine = InferenceEngine(
                    predictor, max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms, cache_size=self.cache_size,
                    drift_monitor=self._drift_monitor(model, key[1]))
                with self._lock:
                    self._engines[key] = engine
                    self._loading.pop(key, None)
        return engine, key[1]

    def _drift_monitor(self, model: str, version: int):
        """A monitor over the version's published baseline, if it has one.

        A missing or unreadable sketch silently disables drift scoring for
        the engine — serving never fails because monitoring cannot start.
        """
        try:
            baseline = self.registry.load_drift_baseline(model, version)
        except Exception:
            return None
        if baseline is None:
            return None
        from repro.serve.drift import DriftMonitor
        return DriftMonitor(baseline)

    def retire(self, model: str, version: int) -> bool:
        """Close and drop the engine of one (model, version), if loaded.

        The hot-swap path calls this after flipping a route to a new
        version: the old engine's feature/result caches go with it, so a
        stale prediction can never resurface on the route.
        """
        key = (model, int(version))
        with self._lock:
            engine = self._engines.pop(key, None)
        if engine is not None:
            engine.close()
        return engine is not None

    def warm(self, model: str, version: Optional[int] = None) -> int:
        """Load (or touch) one engine; returns the concrete version."""
        _, resolved = self.engine(model, version)
        return resolved

    @staticmethod
    def _resolve_kernel(uid: str):
        return kernel_registry.get_kernel(uid)

    def _record(self, model: str, started: float, failed: bool) -> float:
        latency_ms = 1e3 * (time.perf_counter() - started)
        with self._stats_lock:
            self._requests += 1
            self._errors += int(failed)
            self._latency_sum += latency_ms
            self._per_model[model] = self._per_model.get(model, 0) + 1
        return latency_ms

    def _daemon(self):
        """This thread's client of the configured serve daemon.

        One connection per calling thread, so concurrent ``tune`` calls
        reach the daemon concurrently and its dispatcher can batch them —
        a single shared client would serialise them to batches of one.
        """
        client = getattr(self._daemon_local, "client", None)
        if client is None:
            from repro.serve.client import DaemonClient
            client = DaemonClient(self.daemon)
            self._daemon_local.client = client
            with self._lock:
                self._daemon_clients.append(client)
        return client

    # ------------------------------------------------------------------
    def tune(self, request: TuneRequest) -> TuneResponse:
        """Tune one kernel with a published :class:`MGATuner`."""
        started = time.perf_counter()
        if self.daemon is not None:
            try:
                response = self._daemon().tune(request)
            except BaseException:
                self._record(request.model, started, failed=True)
                raise
            self._record(request.model, started, failed=False)
            return response
        try:
            engine, version = self.engine(request.model, request.version)
            require_tuner(engine.predictor, request.model)
            spec = self._resolve_kernel(request.kernel)
            scale = resolve_tune_scale(spec, request.scale,
                                       request.target_bytes)
            config, counters = engine.tune(spec, scale)
        except BaseException:
            self._record(request.model, started, failed=True)
            raise
        latency_ms = self._record(request.model, started, failed=False)
        return TuneResponse(latency_ms=latency_ms, **tune_response_fields(
            request.model, version, request.kernel, scale, config, counters))

    def run_campaign(self, request: CampaignRequest) -> CampaignResponse:
        """Run (or resume) a parallel search campaign on the simulator."""
        started = time.perf_counter()
        label = f"campaign:{request.tuner}"
        try:
            if request.resume is not None:
                # the checkpoint is the source of truth for kernel / arch /
                # space / simulator parameters — only execution knobs
                # (workers, checkpoint destination) come from the request
                campaign = TuningCampaign.resume(
                    request.resume, workers=request.workers,
                    checkpoint_path=request.checkpoint or request.resume)
            else:
                if request.kernel is None:
                    raise ValueError("kernel is required unless resuming "
                                     "from a checkpoint")
                arch = get_microarch(request.arch)
                spec_kernel = self._resolve_kernel(request.kernel)
                if request.space == "threads":
                    space = thread_search_space(arch)
                elif request.space == "full":
                    space = full_search_space(max_threads=arch.max_threads)
                else:
                    raise ValueError(f"unknown space {request.space!r} "
                                     f"(expected 'full' or 'threads')")
                objective_spec = SimObjectiveSpec(
                    kernel_uid=spec_kernel.uid, arch=arch, scale=request.scale,
                    noise=request.noise, seed=request.sim_seed,
                    repeats=request.repeats)
                config: Dict[str, Any] = {}
                if request.tuner != "oracle":
                    config = {"budget": request.budget, "seed": request.seed}
                tuner = make_tuner(request.tuner, config)
                campaign = TuningCampaign(
                    tuner, space, objective_spec, workers=request.workers,
                    batch_size=request.batch_size,
                    checkpoint_path=request.checkpoint)
            result = campaign.run()
            from repro.frontend.openmp import default_omp_config
            campaign_arch = campaign.objective_spec.arch
            default = default_omp_config(campaign_arch.cores)
            try:
                key = campaign.space.index_of(default)
            except KeyError:
                key = len(campaign.space)
            default_time = campaign.objective_spec.build()(default, key)
        except BaseException:
            self._record(label, started, failed=True)
            raise
        self._record(label, started, failed=False)
        return CampaignResponse(
            kernel=campaign.objective_spec.kernel_uid, tuner=campaign.tuner.name,
            arch=campaign_arch.name, best_label=result.best_config.label(),
            best_time=result.best_time, default_time=default_time,
            speedup_over_default=default_time / result.best_time,
            evaluations=result.evaluations, batches=campaign.batches,
            workers=campaign.workers, wall_seconds=campaign.wall_seconds,
            checkpoint=campaign.checkpoint_path, finished=campaign.finished)

    def map_device(self, request: MapRequest) -> MapResponse:
        """Map one kernel with a published :class:`DeviceMapper`."""
        started = time.perf_counter()
        if self.daemon is not None:
            try:
                response = self._daemon().map_device(request)
            except BaseException:
                self._record(request.model, started, failed=True)
                raise
            self._record(request.model, started, failed=False)
            return response
        try:
            engine, version = self.engine(request.model, request.version)
            require_mapper(engine.predictor, request.model)
            spec = self._resolve_kernel(request.kernel)
            label = engine.map_device(spec, request.transfer_bytes,
                                      request.wgsize)
        except BaseException:
            self._record(request.model, started, failed=True)
            raise
        latency_ms = self._record(request.model, started, failed=False)
        return MapResponse(latency_ms=latency_ms, **map_response_fields(
            request.model, version, request.kernel, label))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service-level counters plus the per-engine batching/cache stats."""
        with self._stats_lock:
            snapshot: Dict[str, Any] = {
                "requests": self._requests,
                "errors": self._errors,
                "mean_latency_ms": self._latency_sum / max(1, self._requests),
                "per_model_requests": dict(self._per_model),
            }
        with self._lock:
            snapshot["engines"] = {
                f"{name}@{version}": engine.stats()
                for (name, version), engine in self._engines.items()
            }
        if self.daemon is not None and self._daemon_clients:
            snapshot["daemon"] = self._daemon().stats()
        return snapshot

    def close(self) -> None:
        with self._lock:
            engines, self._engines = list(self._engines.values()), {}
            clients, self._daemon_clients = self._daemon_clients, []
        for engine in engines:
            engine.close()
        for client in clients:
            client.close()
        self._daemon_local = threading.local()

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
