"""Wire protocol of the serving daemon: JSON lines over a stream socket.

Every request and response is one JSON document on one ``\\n``-terminated
UTF-8 line.  Requests carry a caller-chosen ``id`` that the daemon echoes
back, so one connection may pipeline many requests and receive the responses
out of order (batches complete when their worker finishes, not in arrival
order).

Transports
----------
The protocol is transport-agnostic: the same framing, ops and error codes
run over a local ``AF_UNIX`` socket (one box) or TCP (cross-host), selected
by the *address scheme*:

``/tmp/repro.sock`` or ``unix:///tmp/repro.sock``
    an ``AF_UNIX`` stream socket at that filesystem path;
``tcp://HOST:PORT``
    an ``AF_INET`` stream socket (``PORT`` 0 binds an ephemeral port, which
    :func:`create_listener` resolves into the returned address).

:func:`parse_address`, :func:`connect_address` and :func:`create_listener`
are the only places that know the difference; daemon, router and client all
take address strings.

Request ops
-----------
``tune``      ``{"op": "tune", "model": ..., "kernel": ..., "scale": ...}``
``map``       ``{"op": "map", "model": ..., "kernel": ..., ...}``
``session``   one self-contained black-box search session (see
              :func:`session_to_wire`)
``stats``     daemon introspection: queue depth, batch histogram, latency,
              swap counters, shadow disagreement, drift scores
``swap``      hot-swap control: pin a route to a version, roll back, or
              re-track the registry's latest (see
              :mod:`repro.serve.lifecycle`)
``shadow``    start/stop/inspect a shadow deploy of a candidate version
``ping``      liveness probe
``shutdown``  drain outstanding work, stop the workers, exit

A :class:`~repro.tuners.fleet.CampaignCoordinator` speaks the same framing
with its own op set (``lease`` / ``heartbeat`` / ``submit``, see
:mod:`repro.tuners.fleet`); ``stats``/``ping``/``shutdown`` work there too.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` on success and
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}`` on
failure.  ``code`` is machine-actionable; the important ones are
``overloaded`` (the bounded request queue is full — the daemon *sheds* the
request instead of queueing it; back off and retry) and ``worker_crashed``
(a worker died mid-batch and the request exhausted its retry).
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.serve import faults

#: requests the dispatcher batches and hands to worker processes
BATCHED_OPS = ("tune", "map", "session", "_crash", "_sleep")

#: requests the front-end answers inline (never queued, never shed)
INLINE_OPS = ("stats", "ping", "shutdown")

#: online-operations requests (answered inline by the daemon's lifecycle
#: manager; the router fans them out to every replica of the owning group)
ADMIN_OPS = ("swap", "shadow")

#: campaign-fleet requests (answered inline by a CampaignCoordinator)
FLEET_OPS = ("lease", "heartbeat", "submit")

#: error codes a client can act on
ERR_BAD_REQUEST = "bad_request"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_WORKER_CRASHED = "worker_crashed"
ERR_NO_REGISTRY = "no_registry"
ERR_NO_REPLICA = "no_replica"
ERR_INTERNAL = "internal"

MAX_LINE_BYTES = 32 * 1024 * 1024


# ----------------------------------------------------------------------
# addresses: one string names a transport + endpoint
# ----------------------------------------------------------------------
def parse_address(address: Union[str, os.PathLike]
                  ) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from an address.

    A bare string is an ``AF_UNIX`` path (the historical form); ``unix://``
    makes that explicit and ``tcp://host:port`` selects TCP.
    """
    address = os.fspath(address)
    if address.startswith("unix://"):
        path = address[len("unix://"):]
        if not path:
            raise ValueError("unix:// address needs a socket path")
        return "unix", path
    if address.startswith("tcp://"):
        host, sep, port = address[len("tcp://"):].rpartition(":")
        if not sep or not host:
            raise ValueError(f"tcp address must be tcp://HOST:PORT, "
                             f"got {address!r}")
        try:
            port_number = int(port)
        except ValueError as exc:
            raise ValueError(f"invalid port in {address!r}") from exc
        if not 0 <= port_number <= 65535:
            raise ValueError(f"port out of range in {address!r}")
        return "tcp", (host, port_number)
    if not address:
        raise ValueError("empty address")
    return "unix", address


def format_address(scheme: str,
                   location: Union[str, Tuple[str, int]]) -> str:
    if scheme == "unix":
        return str(location)
    host, port = location
    return f"tcp://{host}:{port}"


def connect_address(address: str,
                    timeout: Optional[float] = None) -> socket.socket:
    """A connected stream socket for ``address`` (caller closes it)."""
    scheme, location = parse_address(address)
    if scheme == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(location)
        if scheme == "tcp":
            # small JSON frames: never wait for Nagle coalescing
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
    except BaseException:
        sock.close()
        raise
    return sock


def create_listener(address: str,
                    backlog: int = 128) -> Tuple[socket.socket, str]:
    """A bound + listening socket and its *resolved* address string.

    TCP port 0 binds an ephemeral port; the returned address carries the
    port the kernel actually assigned.  Stale ``AF_UNIX`` socket files are
    the caller's concern (only it knows whether a live peer may own them).
    """
    scheme, location = parse_address(address)
    if scheme == "unix":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(location)
            listener.listen(backlog)
        except BaseException:
            listener.close()
            raise
        return listener, format_address("unix", location)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(location)
        listener.listen(backlog)
        host, port = listener.getsockname()[:2]
    except BaseException:
        listener.close()
        raise
    return listener, format_address("tcp", (location[0], port))


class ProtocolError(Exception):
    """A malformed frame (bad JSON, missing fields, oversized line)."""


def encode_frame(document: Dict[str, Any]) -> bytes:
    """One JSON document as one newline-terminated UTF-8 line."""
    return (json.dumps(document, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("frame must be a JSON object")
    return document


def error_response(request_id, code: str, message: str,
                   **detail) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(detail)
    return {"id": request_id, "ok": False, "error": error}


def ok_response(request_id, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


# ----------------------------------------------------------------------
# framed socket I/O (shared by the daemon's connections and the client)
# ----------------------------------------------------------------------
class LineChannel:
    """Buffered newline framing over one connected socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def send(self, document: Dict[str, Any]) -> None:
        frame = encode_frame(document)
        injector = faults.active()
        if injector is None:
            self.sock.sendall(frame)
            return
        # chaos only: an installed fault plan may drop, duplicate or delay
        # outgoing frames (receivers already tolerate all three: callers
        # time out and retry, and responses are matched by id)
        for part in injector.frames(frame):
            self.sock.sendall(part)

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The next decoded frame, or ``None`` on a clean EOF."""
        self.sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError("frame exceeds the line size limit")
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_frame(line)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# objective + search-session payloads (the tuning fan-out units)
# ----------------------------------------------------------------------
def objective_to_wire(objective) -> Dict[str, Any]:
    """An objective spec as a pure-JSON tree.

    ``float`` values survive the JSON round trip exactly (``repr`` round
    trips IEEE-754 doubles), so an objective evaluated remotely produces
    the same measurement bytes as a local run.
    """
    from repro.tuners.campaign import LookupObjectiveSpec, SimObjectiveSpec

    if isinstance(objective, LookupObjectiveSpec):
        return {"type": "lookup",
                "times": np.asarray(objective.times,
                                    dtype=np.float64).tolist(),
                "floor": float(objective.floor)}
    if isinstance(objective, SimObjectiveSpec):
        return {"type": "sim", "spec": objective.to_config()}
    raise TypeError(f"objective {type(objective).__name__} has no wire form")


def objective_from_wire(data: Dict[str, Any]):
    from repro.tuners.campaign import LookupObjectiveSpec, SimObjectiveSpec

    kind = data.get("type")
    if kind == "lookup":
        return LookupObjectiveSpec(
            times=np.asarray(data["times"], dtype=np.float64),
            floor=float(data["floor"]))
    if kind == "sim":
        return SimObjectiveSpec.from_config(data["spec"])
    raise ProtocolError(f"unknown objective type {kind!r}")


def session_to_wire(session) -> Dict[str, Any]:
    """A :class:`~repro.tuners.campaign.SearchSession` as a pure-JSON tree."""
    return {"tuner_name": session.tuner_name,
            "tuner_config": dict(session.tuner_config),
            "space": list(session.space),
            "objective": objective_to_wire(session.objective)}


def session_from_wire(data: Dict[str, Any]):
    from repro.tuners.campaign import SearchSession

    return SearchSession(tuner_name=data["tuner_name"],
                         tuner_config=dict(data["tuner_config"]),
                         space=list(data["space"]),
                         objective=objective_from_wire(data["objective"]))


def outcome_to_wire(outcome) -> Dict[str, Any]:
    """A :class:`~repro.tuners.campaign.SessionOutcome` as a JSON tree."""
    return {"best_index": int(outcome.best_index),
            "best_time": float(outcome.best_time),
            "evaluations": int(outcome.evaluations),
            "indices": [int(i) for i in outcome.indices],
            "times": [float(t) for t in outcome.times]}


def outcome_from_wire(data: Dict[str, Any]):
    from repro.tuners.campaign import SessionOutcome

    return SessionOutcome(
        best_index=int(data["best_index"]),
        best_time=float(data["best_time"]),
        evaluations=int(data["evaluations"]),
        indices=np.asarray(data["indices"], dtype=np.int64),
        times=np.asarray(data["times"], dtype=np.float64))


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


def validate_request(document: Dict[str, Any]) -> Tuple[Any, str]:
    """``(id, op)`` of a request frame, raising :class:`ProtocolError`."""
    op = document.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing the 'op' field")
    if (op not in BATCHED_OPS and op not in INLINE_OPS
            and op not in ADMIN_OPS and op not in FLEET_OPS):
        raise ProtocolError(f"unknown op {op!r}")
    if op in ADMIN_OPS:
        if not isinstance(document.get("model"), str):
            raise ProtocolError(f"op {op!r} requires a string 'model' field")
        if document.get("version") is not None and \
                not isinstance(document.get("version"), int):
            raise ProtocolError(f"op {op!r} 'version' must be an integer")
    if op == "shadow":
        action = document.get("action", "status")
        if action not in ("start", "stop", "status"):
            raise ProtocolError("op 'shadow' action must be start/stop/"
                                "status")
        if action == "start" and not isinstance(document.get("version"),
                                                int):
            raise ProtocolError("op 'shadow' start requires an integer "
                                "'version' (the candidate)")
    if op in ("tune", "map"):
        for field in ("model", "kernel"):
            if not isinstance(document.get(field), str):
                raise ProtocolError(f"op {op!r} requires a string "
                                    f"{field!r} field")
    if op == "map":
        for field in ("transfer_bytes", "wgsize"):
            if not isinstance(document.get(field), (int, float)):
                raise ProtocolError(f"op 'map' requires a numeric "
                                    f"{field!r} field")
    if op == "session" and not isinstance(document.get("session"), dict):
        raise ProtocolError("op 'session' requires a 'session' object")
    if op in FLEET_OPS and not isinstance(document.get("worker"), str):
        raise ProtocolError(f"op {op!r} requires a string 'worker' field")
    if op in ("heartbeat", "submit"):
        if not isinstance(document.get("lease"), str):
            raise ProtocolError(f"op {op!r} requires a string 'lease' field")
    if op == "submit":
        if not isinstance(document.get("campaign"), str):
            raise ProtocolError("op 'submit' requires a string 'campaign' "
                                "field")
        for field in ("eval", "attempt", "value"):
            if not isinstance(document.get(field), (int, float)):
                raise ProtocolError(f"op 'submit' requires a numeric "
                                    f"{field!r} field")
    return document.get("id"), op
