"""Thread-safe batched inference over a fitted tuner or device mapper.

Concurrent ``tune`` / ``map_device`` requests are micro-batched: a worker
thread gathers everything queued within a short window (``max_wait_ms``, up
to ``max_batch_size``) and issues **one** :meth:`MGAModel.predict` call for
the whole batch, which amortises graph batching and the per-call numpy
overhead across requests.

Static features are memoised in an LRU cache: the ProGraML graph, the IR2Vec
vector and — for OpenMP tuning — the default-configuration profiling counters
are identical across repeated requests for the same (kernel, input size), so
only the first request pays for lowering, graph construction, encoding and
the simulated profiling runs.

Because the model is deterministic given those features, the *final* response
is memoised too (``memoize_results``): a repeat of an already-answered
(kernel, input size) request returns without touching the model at all, the
way any serving layer fronts a pure function with a response cache.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.tuner import DeviceMapper, MGATuner
from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.frontend.spec import KernelSpec
from repro.graphs import batch_graphs
from repro.nn.backend import xp
from repro.profiling import PAPIProfiler
from repro.serve.drift import map_feature_vector, tune_feature_vector


class _LRUCache:
    """A small thread-safe least-recently-used cache with hit statistics."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._data: "collections.OrderedDict" = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class PendingResult:
    """Handle for one queued request; ``result()`` blocks until completion."""

    __slots__ = ("_event", "_value", "_error", "submitted_at", "completed_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.completed_at: Optional[float] = None

    def _finish(self, value=None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def latency_seconds(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("request not completed")
        return self.completed_at - self.submitted_at


class _Request:
    __slots__ = ("graph", "vector", "extra", "finalize", "pending")

    def __init__(self, graph, vector, extra, finalize, pending):
        self.graph = graph
        self.vector = vector
        self.extra = extra
        self.finalize = finalize          # index -> response value
        self.pending = pending


class InferenceEngine:
    """Batched, cached serving front-end for one fitted tuner/mapper."""

    def __init__(self, predictor: Union[MGATuner, DeviceMapper],
                 max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 cache_size: int = 512, memoize_results: bool = True,
                 drift_monitor=None):
        if not isinstance(predictor, (MGATuner, DeviceMapper)):
            raise TypeError("predictor must be an MGATuner or DeviceMapper")
        if predictor.model is None:
            raise ValueError("predictor is not fitted")
        self.predictor = predictor
        #: optional :class:`~repro.serve.drift.DriftMonitor` scoring each
        #: *distinct* served request (memoized repeats skip feature
        #: extraction entirely, so they are not re-scored) against the
        #: published training-distribution sketch
        self.drift_monitor = drift_monitor
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.cache = _LRUCache(cache_size)
        self.results = _LRUCache(cache_size) if memoize_results else None
        # block-diagonal graph batches (and their sorted edge layouts) are
        # deterministic per graph tuple: repeated micro-batches of the same
        # hot kernels skip batch construction entirely.  The key is the
        # *ordered* id tuple (batching is order sensitive), so entries only
        # pay off for recurring compositions — keep the capacity small to
        # bound the retained batches under non-repeating traffic
        self._batch_cache = _LRUCache(min(cache_size, 64))
        self._batch_hits = 0
        self._batch_misses = 0
        self._queue: "collections.deque[_Request]" = collections.deque()
        self._cond = threading.Condition()
        self._running = True
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._memoized = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch_seen = 0
        self._latency_sum = 0.0
        self._worker = threading.Thread(target=self._serve_loop,
                                        name="repro-serve-engine", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # request preparation (runs on the caller's thread, cache-memoised)
    # ------------------------------------------------------------------
    def _tune_features(self, spec: KernelSpec, scale: float):
        tuner = self.predictor
        key = ("tune", spec.uid, spec.model.value, float(scale))
        cached = self.cache.get(key)
        if cached is None:
            profiler = PAPIProfiler(tuner.arch)
            record = profiler.profile(
                spec, scale=scale, config=default_omp_config(tuner.arch.cores),
                events=tuner.counter_names)
            graph, vector = tuner.extractor.extract(spec)
            extra = xp.array([record.counters[name]
                              for name in tuner.counter_names])
            cached = (graph, vector, extra, dict(record.counters))
            self.cache.put(key, cached)
        return cached

    def _map_features(self, spec: KernelSpec):
        key = ("map", spec.uid, spec.model.value)
        cached = self.cache.get(key)
        if cached is None:
            cached = self.predictor.extractor.extract(spec)
            self.cache.put(key, cached)
        return cached

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit_tune(self, spec: KernelSpec, scale: float = 1.0) -> PendingResult:
        """Queue one OpenMP tuning request; returns immediately."""
        if not isinstance(self.predictor, MGATuner):
            raise TypeError("this engine serves a DeviceMapper, not a tuner")
        pending = PendingResult()
        key = ("tune", spec.uid, spec.model.value, float(scale))
        if self._try_memoized(key, pending):
            return pending
        graph, vector, extra, counters = self._tune_features(spec, scale)
        if self.drift_monitor is not None:
            self.drift_monitor.observe(
                tune_feature_vector(
                    vector, counters,
                    self.drift_monitor.baseline.counter_names),
                graph=graph)
        configs = self.predictor.configs

        def finalize(index: int):
            if self.results is not None:
                self.results.put(key, (index, counters))
            return configs[index], dict(counters)

        self._enqueue(_Request(graph, vector, extra, finalize, pending))
        return pending

    def tune(self, spec: KernelSpec, scale: float = 1.0
             ) -> Tuple[OMPConfig, Dict[str, float]]:
        """Blocking :meth:`MGATuner.tune` equivalent (batched under the hood)."""
        return self.submit_tune(spec, scale).result()

    def submit_map(self, spec: KernelSpec, transfer_bytes: float,
                   wgsize: int) -> PendingResult:
        """Queue one CPU/GPU mapping request; returns immediately."""
        if not isinstance(self.predictor, DeviceMapper):
            raise TypeError("this engine serves an MGATuner, not a mapper")
        pending = PendingResult()
        key = ("map", spec.uid, spec.model.value, float(transfer_bytes),
               int(wgsize))
        if self._try_memoized(key, pending):
            return pending
        graph, vector = self._map_features(spec)
        if self.drift_monitor is not None:
            self.drift_monitor.observe(
                map_feature_vector(vector, transfer_bytes, wgsize),
                graph=graph)
        extra = xp.array([xp.log1p(float(transfer_bytes)),
                          xp.log1p(float(wgsize))])

        def finalize(index: int):
            if self.results is not None:
                self.results.put(key, (index, None))
            return index

        self._enqueue(_Request(graph, vector, extra, finalize, pending))
        return pending

    def map_device(self, spec: KernelSpec, transfer_bytes: float,
                   wgsize: int) -> int:
        """Blocking :meth:`DeviceMapper.map_device` equivalent."""
        return self.submit_map(spec, transfer_bytes, wgsize).result()

    def tune_many(self, requests: Sequence[Tuple[KernelSpec, float]]
                  ) -> List[Tuple[OMPConfig, Dict[str, float]]]:
        """Submit many (spec, scale) requests at once and wait for all."""
        handles = [self.submit_tune(spec, scale) for spec, scale in requests]
        return [h.result() for h in handles]

    # ------------------------------------------------------------------
    def _try_memoized(self, key, pending: PendingResult) -> bool:
        """Answer from the response cache if this exact request was served."""
        if self.results is None:
            return False
        hit = self.results.get(key)
        if hit is None:
            return False
        index, counters = hit
        if key[0] == "tune":
            value = (self.predictor.configs[index], dict(counters))
        else:
            value = index
        pending._finish(value=value)
        with self._stats_lock:
            self._requests += 1
            self._memoized += 1
            self._latency_sum += pending.latency_seconds
        return True

    def _enqueue(self, request: _Request) -> None:
        with self._cond:
            if not self._running:
                raise RuntimeError("engine is closed")
            self._queue.append(request)
            self._cond.notify_all()
        with self._stats_lock:
            self._requests += 1

    def _serve_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and self._running:
                    self._cond.wait()
                if not self._queue and not self._running:
                    return
                # gather a micro-batch: wait (briefly) for co-arriving work
                deadline = time.perf_counter() + self.max_wait_s
                while len(self._queue) < self.max_batch_size and self._running:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = [self._queue.popleft()
                         for _ in range(min(len(self._queue),
                                            self.max_batch_size))]
            self._run_batch(batch)

    def _batched_graph(self, graphs):
        """Memoised ``batch_graphs`` keyed on the identity of the graph tuple.

        The per-request feature cache returns the *same* graph objects for
        repeated (kernel, input) requests, so identical micro-batches recur;
        the stored graph list keeps the ids alive, and the identity re-check
        guards against id reuse after an eviction.
        """
        key = tuple(id(g) for g in graphs)
        hit = self._batch_cache.get(key)
        if hit is not None and all(a is b for a, b in zip(hit[0], graphs)):
            with self._stats_lock:
                self._batch_hits += 1
            return hit[1]
        batched = batch_graphs(graphs)
        self._batch_cache.put(key, (list(graphs), batched))
        with self._stats_lock:
            self._batch_misses += 1
        return batched

    def _run_batch(self, batch: List[_Request]) -> None:
        try:
            graphs = [r.graph for r in batch]
            vectors = xp.stack([r.vector for r in batch])
            extra = xp.stack([r.extra for r in batch])
            model = self.predictor.model
            batched = (self._batched_graph(graphs)
                       if model.modalities.use_graph else None)
            indices = model.predict(graphs, vectors, extra, batch=batched)
        except BaseException as exc:           # pragma: no cover - defensive
            for request in batch:
                request.pending._finish(error=exc)
            with self._stats_lock:
                self._errors += len(batch)
            return
        for request, index in zip(batch, indices):
            try:
                request.pending._finish(value=request.finalize(int(index)))
            except BaseException as exc:       # pragma: no cover - defensive
                request.pending._finish(error=exc)
        with self._stats_lock:
            self._batches += 1
            self._batched_requests += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            self._latency_sum += sum(r.pending.latency_seconds for r in batch)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for monitoring: batching, caching and latency."""
        with self._stats_lock:
            completed = self._batched_requests + self._memoized
            lookups = self.cache.hits + self.cache.misses
            result_lookups = (self.results.hits + self.results.misses
                              if self.results is not None else 0)
            return {
                "requests": self._requests,
                "completed": completed,
                "errors": self._errors,
                "batches": self._batches,
                "mean_batch_size": self._batched_requests / max(1, self._batches),
                "max_batch_size_seen": self._max_batch_seen,
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_hit_rate": self.cache.hits / max(1, lookups),
                "cache_entries": len(self.cache),
                "memoized_responses": self._memoized,
                "result_cache_hit_rate": (self.results.hits
                                          / max(1, result_lookups)
                                          if self.results is not None else 0.0),
                "batch_cache_hit_rate": (
                    self._batch_hits
                    / max(1, self._batch_hits + self._batch_misses)),
                "mean_latency_ms": 1e3 * self._latency_sum / max(1, completed),
                "drift": (self.drift_monitor.summary()
                          if self.drift_monitor is not None else None),
            }

    def drift_summary(self) -> Optional[Dict[str, float]]:
        """Cumulative drift counters (None without a published baseline)."""
        if self.drift_monitor is None:
            return None
        return self.drift_monitor.summary()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker; outstanding queued requests fail."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            leftover = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        self._worker.join()
        for request in leftover:
            request.pending._finish(error=RuntimeError("engine is closed"))

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
