"""Online model lifecycle: registry watch, hot-swap, shadow deploys.

The daemon's routes were static until this module: whatever version a
worker resolved at load time was what the route served until restart.
:class:`LifecycleManager` makes the version a *managed pointer*:

* **Registry watch** — :meth:`check_registry` polls the registry's
  ``GENERATION`` stamp (bumped atomically by every publish).  When it
  moves, every *unpinned* route whose ``latest`` changed is hot-swapped.
* **Hot-swap** — :meth:`swap` warm-loads the target version on every
  worker **before** flipping the route pointer, so the flip is a pure
  in-memory rename between micro-batches: requests already dispatched
  finish on the old version, every batch formed after the flip carries
  the new one, and no batch ever mixes versions (the daemon stamps the
  whole batch with one resolved version under its dispatch lock).  The
  old engine is retired (closed, caches dropped) after the flip.  Routes
  can be pinned to a version, rolled back to the previous one, or
  returned to tracking ``latest``.
* **Shadow deploys** — :meth:`shadow_start` registers a candidate
  version for a route; the daemon tees a sampled fraction of answered
  live requests into a separate low-priority queue (served only by
  otherwise-idle workers, never ahead of live traffic), and
  :meth:`record_shadow` diffs the candidate's answer against the
  already-delivered primary one: exact label equality for device
  mapping, a thread-count tolerance for tuning configs.  A policy can
  auto-promote (disagreement below a floor after enough comparisons) or
  auto-abort (above a ceiling); both run asynchronously because
  promotion is itself a swap.

The manager is transport-free: the daemon injects ``warm``/``retire``
callables (which broadcast control messages to its worker processes) and
owns all queueing.  :class:`DriftAggregator` folds the workers'
cumulative per-engine drift counters (see :mod:`repro.serve.drift`) into
exact per-route totals that survive worker restarts.
"""

from __future__ import annotations

import collections
import dataclasses
import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.serve.drift import merge_route_drift

#: comparisons a shadow diff remembers verbatim (the newest disagreements)
RECENT_DISAGREEMENTS = 20


class SwapError(RuntimeError):
    """A hot-swap could not complete (bad version, warm failure, ...)."""


@dataclasses.dataclass(frozen=True)
class ShadowPolicy:
    """Auto-promote/abort thresholds on the disagreement rate.

    With ``min_compared`` 0 the shadow is manual: it only reports.
    Otherwise, once ``min_compared`` comparisons have been recorded the
    candidate is promoted when ``disagreement_rate <= promote_below`` and
    aborted when ``disagreement_rate >= abort_above``.
    """

    min_compared: int = 0
    promote_below: float = 0.0
    abort_above: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _RouteState:
    __slots__ = ("model", "active_version", "previous_version", "pinned",
                 "swaps", "last_swap")

    def __init__(self, model: str, active_version: Optional[int]):
        self.model = model
        self.active_version = active_version
        self.previous_version: Optional[int] = None
        self.pinned = False
        self.swaps = 0
        self.last_swap: Optional[Dict[str, Any]] = None

    def snapshot(self) -> Dict[str, Any]:
        return {"active_version": self.active_version,
                "previous_version": self.previous_version,
                "pinned": self.pinned,
                "swaps": self.swaps,
                "last_swap": self.last_swap}


class _ShadowState:
    def __init__(self, model: str, candidate: int, fraction: float,
                 tolerance: float, policy: ShadowPolicy):
        self.model = model
        self.candidate = int(candidate)
        self.fraction = float(fraction)
        self.tolerance = float(tolerance)
        self.policy = policy
        self.outcome = "active"     # active | promoted | aborted | stopped
        self.teed = 0
        self.dropped = 0
        self.compared = 0
        self.agree = 0
        self.near = 0
        self.disagree = 0
        self.errors = 0
        self.recent: "collections.deque" = \
            collections.deque(maxlen=RECENT_DISAGREEMENTS)

    @property
    def disagreement_rate(self) -> float:
        return self.disagree / self.compared if self.compared else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"candidate_version": self.candidate,
                "fraction": self.fraction,
                "tolerance": self.tolerance,
                "policy": self.policy.to_dict(),
                "outcome": self.outcome,
                "teed": self.teed,
                "dropped": self.dropped,
                "compared": self.compared,
                "agree": self.agree,
                "near": self.near,
                "disagree": self.disagree,
                "errors": self.errors,
                "disagreement_rate": self.disagreement_rate,
                "recent_disagreements": list(self.recent)}


def diff_predictions(op: str, primary: Dict[str, Any],
                     shadow: Dict[str, Any],
                     tolerance: float) -> str:
    """``"agree" | "near" | "disagree"`` between two answers to one request.

    Device mapping is exact (the label either matches or it does not).
    Tuning configs agree on identical labels; they are *near* — counted
    with agreements by the promotion policy — when the schedule matches
    and the thread counts differ by at most ``tolerance`` (relative to
    the larger count).
    """
    if op == "map":
        return "agree" if shadow.get("label") == primary.get("label") \
            else "disagree"
    if shadow.get("config_label") == primary.get("config_label"):
        return "agree"
    if shadow.get("schedule") == primary.get("schedule"):
        threads = (primary.get("num_threads") or 0,
                   shadow.get("num_threads") or 0)
        if max(threads) > 0 and \
                abs(threads[0] - threads[1]) <= tolerance * max(threads):
            return "near"
    return "disagree"


class LifecycleManager:
    """Route-version state machine behind the daemon's online operations."""

    def __init__(self, registry, warm: Callable[[str, int], None],
                 retire: Callable[[str, int], None],
                 sample_seed: int = 0):
        self.registry = registry
        self._warm = warm
        self._retire = retire
        self._lock = threading.Lock()
        #: serialises whole swap operations (warm → flip → retire): two
        #: concurrent swaps of one route must not interleave their phases
        self._swap_lock = threading.Lock()
        self._routes: Dict[str, _RouteState] = {}
        self._shadows: Dict[str, _ShadowState] = {}
        self._finished_shadows: Dict[str, Dict[str, Any]] = {}
        self._rng = random.Random(sample_seed)
        self._last_generation = registry.generation() \
            if registry is not None else 0
        self._checks = 0
        self._swaps = 0
        self._warm_failures = 0

    # ------------------------------------------------------------------
    # route resolution (called by the dispatcher under the daemon lock)
    # ------------------------------------------------------------------
    def resolve(self, model: str) -> Optional[int]:
        """The version a ``latest`` route serves right now (None: none)."""
        with self._lock:
            state = self._routes.get(model)
            if state is not None:
                return state.active_version
        if self.registry is None:
            return None
        try:
            latest = self.registry.latest(model)
        except ValueError:
            return None
        with self._lock:
            state = self._routes.get(model)
            if state is None:
                state = self._routes[model] = _RouteState(model, latest)
            elif state.active_version is None:
                state.active_version = latest
            return state.active_version

    # ------------------------------------------------------------------
    # hot-swap
    # ------------------------------------------------------------------
    def swap(self, model: str, version: Optional[int] = None,
             rollback: bool = False, track_latest: bool = False,
             reason: str = "manual") -> Dict[str, Any]:
        """Warm the target on every worker, flip the route, retire the old.

        ``version`` pins the route there; ``rollback`` targets the route's
        previous version (and pins); ``track_latest`` re-targets the
        registry's current latest and leaves the route following future
        publishes.  Raises :class:`SwapError` when the target does not
        exist or any worker fails to warm it (the route is untouched —
        a failed swap never leaves a half-flipped pointer).
        """
        if self.registry is None:
            raise SwapError("daemon has no model registry")
        with self._swap_lock:
            with self._lock:
                state = self._routes.get(model)
                if state is None:
                    state = self._routes[model] = _RouteState(model, None)
                current = state.active_version
                previous = state.previous_version
            if rollback:
                if previous is None:
                    raise SwapError(f"route {model!r} has no previous "
                                    f"version to roll back to")
                target = previous
            elif version is not None:
                target = int(version)
            else:
                target = self.registry.latest(model)
                if target is None:
                    raise SwapError(f"model {model!r} has no published "
                                    f"versions")
            if target not in self.registry.versions(model):
                raise SwapError(f"model {model!r} has no version {target}")
            pinned = not track_latest and (version is not None or rollback)
            if target == current:
                with self._lock:
                    state.pinned = pinned
                return {"model": model, "version": target,
                        "previous_version": previous, "swapped": False,
                        "pinned": pinned, "reason": reason}
            try:
                self._warm(model, target)
            except Exception as exc:
                with self._lock:
                    self._warm_failures += 1
                raise SwapError(f"warm of {model}@{target} failed: "
                                f"{exc}") from exc
            # the flip: one pointer write under the lock the dispatcher
            # reads through — strictly between micro-batches
            with self._lock:
                state.previous_version = current
                state.active_version = target
                state.pinned = pinned
                state.swaps += 1
                self._swaps += 1
                state.last_swap = {"from": current, "to": target,
                                   "reason": reason,
                                   "at_unix": time.time()}
            if current is not None and current != target:
                try:
                    self._retire(model, current)
                except Exception:
                    pass      # old engines also die with their workers
            return {"model": model, "version": target,
                    "previous_version": current, "swapped": True,
                    "pinned": pinned, "reason": reason}

    # ------------------------------------------------------------------
    # registry watch
    # ------------------------------------------------------------------
    def check_registry(self) -> List[Dict[str, Any]]:
        """One watcher tick: swap unpinned routes if the generation moved."""
        if self.registry is None:
            return []
        generation = self.registry.generation()
        with self._lock:
            self._checks += 1
            if generation == self._last_generation:
                return []
            self._last_generation = generation
            stale = [(state.model, state.active_version)
                     for state in self._routes.values() if not state.pinned]
        swapped = []
        for model, active in stale:
            latest = self.registry.latest(model)
            if latest is None or latest == active:
                continue
            try:
                swapped.append(self.swap(model, latest, track_latest=True,
                                         reason="registry-watch"))
            except SwapError:
                pass          # warm failed: keep serving the old version
        return swapped

    # ------------------------------------------------------------------
    # shadow deploys
    # ------------------------------------------------------------------
    def shadow_start(self, model: str, candidate: int,
                     fraction: float = 0.2, tolerance: float = 0.0,
                     policy: Optional[ShadowPolicy] = None) -> Dict[str, Any]:
        if not 0.0 < fraction <= 1.0:
            raise SwapError("shadow fraction must be in (0, 1]")
        if self.registry is None:
            raise SwapError("daemon has no model registry")
        if int(candidate) not in self.registry.versions(model):
            raise SwapError(f"model {model!r} has no version {candidate}")
        try:
            self._warm(model, int(candidate))
        except Exception as exc:
            with self._lock:
                self._warm_failures += 1
            raise SwapError(f"warm of shadow candidate {model}@{candidate} "
                            f"failed: {exc}") from exc
        state = _ShadowState(model, candidate, fraction, tolerance,
                             policy or ShadowPolicy())
        with self._lock:
            self._shadows[model] = state
        return state.snapshot()

    def shadow_stop(self, model: str,
                    outcome: str = "stopped") -> Dict[str, Any]:
        """End ``model``'s shadow deploy; returns (and keeps) its final
        report under ``finished`` in :meth:`shadow_stats`.
        """
        with self._lock:
            state = self._shadows.pop(model, None)
            if state is None:
                raise SwapError(f"no shadow deploy for model {model!r}")
            if state.outcome == "active":
                state.outcome = outcome
            snapshot = state.snapshot()
            self._finished_shadows[model] = snapshot
            candidate = state.candidate
            route = self._routes.get(model)
            keep = route is not None and candidate in (
                route.active_version, route.previous_version)
        if not keep:
            try:
                self._retire(model, candidate)
            except Exception:
                pass
        return snapshot

    def shadow_status(self, model: str) -> Dict[str, Any]:
        with self._lock:
            state = self._shadows.get(model)
            if state is None:
                raise SwapError(f"no shadow deploy for model {model!r}")
            return state.snapshot()

    def sample_shadow(self, model: str) -> Optional[int]:
        """The candidate version iff this request should be teed."""
        with self._lock:
            state = self._shadows.get(model)
            if state is None or state.outcome != "active":
                return None
            if self._rng.random() >= state.fraction:
                return None
            state.teed += 1
            return state.candidate

    def record_shadow_dropped(self, model: str, candidate: int) -> None:
        with self._lock:
            state = self._shadows.get(model)
            if state is not None and state.candidate == int(candidate):
                state.dropped += 1

    def record_shadow(self, model: str, candidate: int, op: str,
                      primary: Dict[str, Any],
                      response: Dict[str, Any]) -> None:
        """Fold one completed shadow request into the diff report."""
        with self._lock:
            state = self._shadows.get(model)
            if state is None or state.candidate != int(candidate):
                return
            if not response.get("ok"):
                state.errors += 1
                return
            shadow = response.get("result", {})
            verdict = diff_predictions(op, primary, shadow, state.tolerance)
            state.compared += 1
            if verdict == "agree":
                state.agree += 1
            elif verdict == "near":
                state.near += 1
            else:
                state.disagree += 1
                state.recent.append({
                    "kernel": primary.get("kernel"),
                    "primary": {k: primary.get(k)
                                for k in ("config_label", "label",
                                          "version")},
                    "shadow": {k: shadow.get(k)
                               for k in ("config_label", "label",
                                         "version")}})
            action = self._policy_action_locked(state)
        if action is not None:
            # promotion is a swap (a warm broadcast that completes on the
            # same collector thread this method runs on) — run it async
            threading.Thread(target=self._auto_action, name="repro-shadow-"
                             + action, args=(action, model, candidate),
                             daemon=True).start()

    def _policy_action_locked(self, state: _ShadowState) -> Optional[str]:
        policy = state.policy
        if state.outcome != "active" or policy.min_compared <= 0 \
                or state.compared < policy.min_compared:
            return None
        if state.disagreement_rate >= policy.abort_above:
            state.outcome = "aborting"
            return "abort"
        if state.disagreement_rate <= policy.promote_below:
            state.outcome = "promoting"
            return "promote"
        return None

    def _auto_action(self, action: str, model: str, candidate: int) -> None:
        try:
            if action == "promote":
                self.swap(model, candidate, reason="auto-promote")
                final = "promoted"
            else:
                final = "aborted"
        except SwapError:
            final = "active"  # promotion failed: keep shadowing
        with self._lock:
            state = self._shadows.get(model)
            if state is not None and state.candidate == int(candidate):
                state.outcome = final
            else:
                return              # superseded by a newer deploy
        if final in ("aborted", "promoted"):
            # either way the deploy is over: file its final report (the
            # promoted candidate's engine is the active route, so retire
            # inside shadow_stop is a no-op for it)
            try:
                self.shadow_stop(model, outcome=final)
            except SwapError:
                pass                # raced with an explicit stop

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "generation": self._last_generation,
                "checks": self._checks,
                "swaps": self._swaps,
                "warm_failures": self._warm_failures,
                "routes": {model: state.snapshot()
                           for model, state in self._routes.items()},
            }

    def shadow_stats(self) -> Dict[str, Any]:
        """Active deploys keyed by model (finished via the daemon stats)."""
        with self._lock:
            return {model: state.snapshot()
                    for model, state in self._shadows.items()}

    def finished_shadow_stats(self) -> Dict[str, Any]:
        """Final reports of ended deploys, latest per model."""
        with self._lock:
            return {model: dict(snapshot)
                    for model, snapshot in self._finished_shadows.items()}


class DriftAggregator:
    """Exact per-route drift totals from per-worker cumulative counters.

    Workers report *cumulative* :meth:`DriftMonitor.summary` snapshots with
    each finished batch.  Keeping the latest snapshot per (worker, route)
    and folding a worker's final snapshot into a retained total when it
    dies makes the route totals exact across crashes and hot-swap retires
    — no double counting, no lost counts.
    """

    _COUNTERS = ("count", "flagged", "score_sum", "oob_sum", "token_sum")

    def __init__(self):
        self._lock = threading.Lock()
        self._live: Dict[tuple, Dict[str, Any]] = {}    # (worker, route) →
        self._retired: Dict[str, Dict[str, float]] = {}  # route → totals

    def update(self, worker_id: int, route: str,
               snapshot: Dict[str, Any]) -> None:
        with self._lock:
            self._live[(worker_id, route)] = dict(snapshot)

    def forget_worker(self, worker_id: int) -> None:
        """Fold a dead worker's last snapshots into the retained totals."""
        with self._lock:
            for (wid, route), snapshot in list(self._live.items()):
                if wid != worker_id:
                    continue
                del self._live[(wid, route)]
                totals = self._retired.setdefault(
                    route, {name: 0.0 for name in self._COUNTERS})
                for name in self._COUNTERS:
                    totals[name] += float(snapshot.get(name, 0.0))

    def stats(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            routes: Dict[str, List[Dict[str, Any]]] = {}
            for (_, route), snapshot in self._live.items():
                routes.setdefault(route, []).append(snapshot)
            for route, totals in self._retired.items():
                routes.setdefault(route, []).append(dict(totals))
        return {route: merge_route_drift(snapshots)
                for route, snapshots in sorted(routes.items())}
