"""Open-loop load generation: Poisson arrivals, SLOs, latency histograms.

A *closed-loop* generator (N clients, each waiting for its response before
sending again) slows down exactly when the server does, so it can never
show what "millions of users" traffic does to a saturated fleet — real
users do not wait for each other.  This module drives the serving stack
**open loop**: request arrival times are drawn up front from a Poisson
process at the offered rate and each request is fired at its scheduled
instant whether or not earlier ones have completed.

Latency is measured wrk2-style from the request's *scheduled arrival* to
its completion, so coordinated omission (the generator itself falling
behind a saturated server and under-reporting queueing delay) is not hidden
— generator lateness is additionally tracked and reported so a saturated
*generator* is visible too (raise ``concurrency`` if ``max_lateness_ms``
grows).

:func:`open_loop` works against anything that speaks the JSON-line
protocol — a daemon (AF_UNIX or TCP) or a :class:`~repro.serve.router.
ServeRouter` — and returns a JSON-ready report: achieved throughput,
p50/p99/p99.9, a log-spaced latency histogram, per-error-code counts
(``overloaded`` sheds are first-class, they are the *point* of bounded
queues under open-loop overload) and optional SLO attainment.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.serve.client import DaemonClient, DaemonError
from repro.serve.protocol import percentile


class LatencyHistogram:
    """Log-spaced latency buckets (sub-ms to a minute, ~1.6x per bucket)."""

    def __init__(self, low_ms: float = 0.05, high_ms: float = 60_000.0,
                 per_decade: int = 5):
        count = int(np.ceil(np.log10(high_ms / low_ms) * per_decade)) + 1
        self.edges_ms = list(low_ms * 10 ** (np.arange(count) / per_decade))
        self.counts = [0] * (len(self.edges_ms) + 1)

    def record(self, latency_ms: float) -> None:
        index = int(np.searchsorted(self.edges_ms, latency_ms))
        self.counts[index] += 1

    def to_config(self) -> List[Dict[str, float]]:
        """Non-empty buckets as ``{"le_ms": upper_edge, "count": n}`` rows."""
        rows = []
        for index, count in enumerate(self.counts):
            if not count:
                continue
            edge = (self.edges_ms[index] if index < len(self.edges_ms)
                    else float("inf"))
            rows.append({"le_ms": round(edge, 4), "count": count})
        return rows


def poisson_arrivals(rate_rps: float, count: int,
                     seed: int = 0) -> np.ndarray:
    """``count`` cumulative arrival offsets (seconds) at ``rate_rps``."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=count))


def open_loop(address: str, requests: Sequence[Dict[str, Any]],
              rate_rps: float, *, seed: int = 0, concurrency: int = 32,
              timeout: float = 120.0, slo_ms: Optional[float] = None,
              collect_responses: bool = False,
              server_drift: bool = True) -> Dict[str, Any]:
    """Fire ``requests`` at ``address`` as a Poisson stream of ``rate_rps``.

    ``concurrency`` bounds the sender pool (connections), not the offered
    load: it must exceed ``rate × worst-case latency`` or the generator
    itself saturates (visible as ``arrivals.max_lateness_ms``).

    With ``server_drift`` (the default) the report carries the server's
    per-route input-drift summary, read via one ``stats`` request after
    the run — ``None`` when the server has no drift data.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    arrivals = poisson_arrivals(rate_rps, len(requests), seed=seed)
    latencies_ms: List[Optional[float]] = [None] * len(requests)
    lateness_ms: List[float] = [0.0] * len(requests)
    outcomes: List[Optional[str]] = [None] * len(requests)
    responses: List[Optional[Dict[str, Any]]] = \
        [None] * len(requests) if collect_responses else None
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    start = time.perf_counter() + 0.05   # senders need time to line up

    def sender() -> None:
        client = DaemonClient(address, timeout=timeout)
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        return
                    cursor["next"] = index + 1
                scheduled = start + arrivals[index]
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                else:
                    lateness_ms[index] = -1e3 * delay
                try:
                    result = client.request(requests[index])
                    outcomes[index] = "ok"
                    if responses is not None:
                        responses[index] = result
                except DaemonError as exc:
                    outcomes[index] = exc.code
                except (OSError, ConnectionError, TimeoutError):
                    outcomes[index] = "connection"
                    continue             # client re-dials on the next call
                # wrk2-style: latency from the scheduled arrival, so server
                # queueing during generator lateness still counts
                latencies_ms[index] = 1e3 * (time.perf_counter() - scheduled)
        finally:
            client.close()

    threads = [threading.Thread(target=sender, daemon=True,
                                name=f"repro-loadgen-{i}")
               for i in range(min(concurrency, len(requests)))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    ok_latencies = sorted(latencies_ms[i] for i in range(len(requests))
                          if outcomes[i] == "ok")
    histogram = LatencyHistogram()
    for value in ok_latencies:
        histogram.record(value)
    error_counts: Dict[str, int] = {}
    for outcome in outcomes:
        if outcome not in (None, "ok"):
            error_counts[outcome] = error_counts.get(outcome, 0) + 1
    completed = len(ok_latencies)
    report: Dict[str, Any] = {
        "address": address,
        "offered_rps": rate_rps,
        "requests": len(requests),
        "completed": completed,
        "errors": error_counts,
        "shed": error_counts.get("overloaded", 0),
        "duration_s": elapsed,
        "achieved_rps": completed / elapsed if elapsed > 0 else 0.0,
        "concurrency": len(threads),
        "arrivals": {
            "late": int(np.count_nonzero(lateness_ms)),
            "max_lateness_ms": float(max(lateness_ms) if lateness_ms
                                     else 0.0),
        },
        "latency_ms": {
            "count": completed,
            "mean": (sum(ok_latencies) / completed) if completed else 0.0,
            "p50": percentile(ok_latencies, 0.50),
            "p90": percentile(ok_latencies, 0.90),
            "p99": percentile(ok_latencies, 0.99),
            "p999": percentile(ok_latencies, 0.999),
            "max": ok_latencies[-1] if ok_latencies else 0.0,
        },
        "histogram": histogram.to_config(),
    }
    if slo_ms is not None:
        attained = sum(1 for value in ok_latencies if value <= slo_ms)
        report["slo"] = {
            "target_ms": slo_ms,
            # sheds and errors count against the SLO: a shed user was not
            # served inside the target either
            "attainment": attained / len(requests) if requests else 0.0,
            "attained": attained,
        }
    if server_drift:
        report["server_drift"] = _server_drift(address, timeout)
    if collect_responses:
        report["responses"] = responses
    return report


def _server_drift(address: str,
                  timeout: float) -> Optional[Dict[str, Any]]:
    """The server's per-route drift summary, or ``None`` if unavailable."""
    try:
        with DaemonClient(address, timeout=timeout) as client:
            stats = client.stats()
    except (OSError, ConnectionError, TimeoutError, DaemonError):
        return None
    drift = (stats.get("drift") or {}).get("routes")
    return dict(drift) if drift else None
