"""DataRaceBench loops used in the paper (DRB045/046/061/062/093/094/121).

The DRB micro-benchmarks are small OpenMP loops with varied dependence /
reduction / scheduling structure; we model each with the builder whose shape
matches the original micro-benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    dot_kernel,
    histogram_kernel,
    reduction_kernel,
    stencil1d_kernel,
    streaming_kernel,
)

SUITE = "dataracebench"


def drb045(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("DRB045", SUITE, n=1_500_000, num_inputs=1,
                            flops_per_elem=2, model=model)


def drb046(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil1d_kernel("DRB046", SUITE, n=1_000_000, model=model)


def drb061(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return reduction_kernel("DRB061", SUITE, n=3_000_000, model=model)


def drb062(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return dot_kernel("DRB062", SUITE, n=2_500_000, model=model)


def drb093(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return histogram_kernel("DRB093", SUITE, n=1_200_000, bins=1024,
                            model=model)


def drb094(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("DRB094", SUITE, n=2_000_000, num_inputs=2,
                            flops_per_elem=4, model=model)


def drb121(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return reduction_kernel("DRB121", SUITE, n=4_000_000, op="max",
                            model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "DRB045": drb045,
    "DRB046": drb046,
    "DRB061": drb061,
    "DRB062": drb062,
    "DRB093": drb093,
    "DRB094": drb094,
    "DRB121": drb121,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
