"""Kernel registry: Table 1 and convenient accessors over all suites."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels import (
    amdsdk,
    dataracebench,
    lulesh,
    npb,
    nvidiasdk,
    parboil,
    polybench,
    rodinia,
    shoc,
    stream,
)

#: Table 1 of the paper: suite -> list of applications.
TABLE1: Dict[str, List[str]] = {
    "polybench": list(polybench.APPLICATIONS),
    "rodinia": list(rodinia.APPLICATIONS),
    "npb": list(npb.APPLICATIONS),
    "stream": list(stream.APPLICATIONS),
    "dataracebench": list(dataracebench.APPLICATIONS),
    "amdsdk": list(amdsdk.APPLICATIONS),
    "nvidiasdk": list(nvidiasdk.APPLICATIONS),
    "parboil": list(parboil.APPLICATIONS),
    "shoc": list(shoc.APPLICATIONS),
    "lulesh": list(lulesh.APPLICATIONS),
}

_OPENMP_SUITES = {
    "polybench": polybench,
    "rodinia": rodinia,
    "npb": npb,
    "stream": stream,
    "dataracebench": dataracebench,
    "lulesh": lulesh,
}

_OPENCL_NATIVE_SUITES = {
    "amdsdk": amdsdk,
    "nvidiasdk": nvidiasdk,
    "parboil": parboil,
    "shoc": shoc,
}

_ALL_SUITES = {**_OPENMP_SUITES, **_OPENCL_NATIVE_SUITES}


def as_opencl(spec: KernelSpec) -> KernelSpec:
    """Re-express an OpenMP kernel spec as an OpenCL NDRange kernel.

    The paper's device-mapping dataset (Ben-Nun et al.) includes PolyBench,
    Rodinia and NPB OpenCL ports; this helper plays the role of those ports.
    """
    if spec.model == ParallelModel.OPENCL:
        return spec
    return KernelSpec(
        name=spec.name,
        suite=spec.suite,
        arrays=spec.arrays,
        body=spec.body,
        base_sizes=spec.base_sizes,
        scalars=spec.scalars,
        model=ParallelModel.OPENCL,
        serial_advantage=spec.serial_advantage,
        domain=spec.domain,
        description=spec.description,
    )


def kernels_for_suite(suite: str,
                      model: Optional[ParallelModel] = None) -> List[KernelSpec]:
    """All kernels of one suite, optionally forcing the programming model."""
    try:
        module = _ALL_SUITES[suite]
    except KeyError as exc:
        raise KeyError(f"unknown suite {suite!r}; known: {sorted(_ALL_SUITES)}") from exc
    if model is None:
        return module.all_specs()
    specs = module.all_specs()
    if model == ParallelModel.OPENCL:
        return [as_opencl(s) for s in specs]
    return [s for s in specs]


def openmp_kernels(suites: Optional[List[str]] = None) -> List[KernelSpec]:
    """Kernels used in the OpenMP tuning experiments (§4.1)."""
    suites = suites or list(_OPENMP_SUITES)
    specs: List[KernelSpec] = []
    for suite in suites:
        specs.extend(_OPENMP_SUITES[suite].all_specs())
    return specs


def opencl_kernels(include_ported: bool = True) -> List[KernelSpec]:
    """Kernels used in the OpenCL device-mapping experiment (§4.2).

    Native OpenCL suites (AMD SDK, NVIDIA SDK, Parboil, SHOC) plus — when
    ``include_ported`` — OpenCL variants of PolyBench, Rodinia and NPB,
    mirroring the seven suites of the Ben-Nun et al. dataset.
    """
    specs: List[KernelSpec] = []
    for module in _OPENCL_NATIVE_SUITES.values():
        specs.extend(module.all_specs())
    if include_ported:
        for suite in ("polybench", "rodinia", "npb"):
            specs.extend(as_opencl(s) for s in _OPENMP_SUITES[suite].all_specs())
    return specs


def all_kernels() -> List[KernelSpec]:
    """Every kernel in the registry under its native programming model."""
    return openmp_kernels() + [s for m in _OPENCL_NATIVE_SUITES.values()
                               for s in m.all_specs()]


def get_kernel(uid: str, model: Optional[ParallelModel] = None) -> KernelSpec:
    """Look up a kernel by ``suite/name`` identifier."""
    suite, _, name = uid.partition("/")
    try:
        module = _ALL_SUITES[suite]
        factory = module.APPLICATIONS[name]
    except KeyError as exc:
        raise KeyError(f"unknown kernel {uid!r}") from exc
    spec = factory()
    if model is not None and spec.model != model:
        if model == ParallelModel.OPENCL:
            return as_opencl(spec)
        raise ValueError(f"kernel {uid!r} is not available as {model.value}")
    return spec
