"""PolyBench kernels (28 applications, Table 1).

Each function returns the kernel's main parallel loop nest.  Structure and
relative arithmetic intensity follow PolyBench 4.x; trisolv/durbin keep the
paper's observation that their parallel versions can be slower than serial
(``serial_advantage > 1``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.expr import Array, Dim, LoopVar
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.stmt import Assign, For, Reduce
from repro.kernels._builders import (
    correlation_kernel,
    matmul_kernel,
    matvec_kernel,
    stencil1d_kernel,
    stencil2d_kernel,
    stencil3d_kernel,
    triangular_kernel,
)

SUITE = "polybench"


def gemm(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("gemm", SUITE, n=180, model=model)


def two_mm(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("2mm", SUITE, n=160, m=170, k=150, model=model)


def three_mm(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("3mm", SUITE, n=150, m=160, k=170, alpha_beta=False,
                         model=model)


def syrk(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("syrk", SUITE, n=170, m=170, k=140, model=model)


def syr2k(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("syr2k", SUITE, n=160, m=160, k=150, model=model)


def symm(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("symm", SUITE, n=160, model=model)


def trmm(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("trmm", SUITE, n=420, model=model)


def doitgen(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("doitgen", SUITE, n=128, m=128, k=128,
                         alpha_beta=False, model=model)


def atax(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matvec_kernel("atax", SUITE, n=1000, transposed=True, model=model)


def bicg(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matvec_kernel("bicg", SUITE, n=1000, model=model)


def mvt(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matvec_kernel("mvt", SUITE, n=1100, model=model)


def gesummv(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matvec_kernel("gesummv", SUITE, n=900, model=model)


def gemver(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    """gemver: rank-1 updates + matrix-vector products (memory bound)."""
    N = Dim("N")
    A = Array("A", (N, N))
    u1 = Array("u1", (N,))
    v1 = Array("v1", (N,))
    x = Array("x", (N,))
    y = Array("y", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    body = [
        For(i, N, [
            For(j, N, [
                Assign(A[i, j], A[i, j] + u1[i] * v1[j]),
                Reduce(x[i], A[j, i] * y[j]),
            ]),
        ], parallel=True)
    ]
    return KernelSpec("gemver", SUITE, [A, u1, v1, x, y], body, {"N": 1000},
                      model=model, domain="linear algebra",
                      description="rank-1 update + A^T x")


def cholesky(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("cholesky", SUITE, n=500, flops_per_elem=4,
                             model=model)


def lu(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("lu", SUITE, n=550, model=model)


def durbin(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("durbin", SUITE, n=600, serial_advantage=1.15,
                             model=model)


def trisolv(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    # The paper singles trisolv out: its parallel version is slower than the
    # serial one, which hurts fold-1 of the thread-prediction experiment.
    return triangular_kernel("trisolv", SUITE, n=650, serial_advantage=1.45,
                             model=model)


def gramschmidt(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return correlation_kernel("gramschmidt", SUITE, n=220, with_sqrt=True,
                              model=model)


def correlation(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return correlation_kernel("correlation", SUITE, n=260, model=model)


def covariance(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return correlation_kernel("covariance", SUITE, n=250, with_sqrt=False,
                              model=model)


def jacobi_1d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil1d_kernel("jacobi-1d", SUITE, n=400_000, model=model)


def jacobi_2d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("jacobi-2d", SUITE, n=650, model=model)


def seidel_2d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("seidel-2d", SUITE, n=600, points=9, model=model)


def fdtd_2d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("fdtd-2d", SUITE, n=700, flops_scale=2, model=model)


def fdtd_apml(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil3d_kernel("fdtd-apml", SUITE, n=80, model=model)


def convolution_2d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("convolution-2d", SUITE, n=800, points=9,
                            model=model)


def convolution_3d(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil3d_kernel("convolution-3d", SUITE, n=96, model=model)


def adi(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("adi", SUITE, n=550, flops_scale=3, model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "2mm": two_mm,
    "3mm": three_mm,
    "atax": atax,
    "adi": adi,
    "bicg": bicg,
    "cholesky": cholesky,
    "convolution-2d": convolution_2d,
    "convolution-3d": convolution_3d,
    "correlation": correlation,
    "covariance": covariance,
    "doitgen": doitgen,
    "durbin": durbin,
    "fdtd-2d": fdtd_2d,
    "fdtd-apml": fdtd_apml,
    "gemm": gemm,
    "gemver": gemver,
    "gesummv": gesummv,
    "gramschmidt": gramschmidt,
    "jacobi-1d": jacobi_1d,
    "jacobi-2d": jacobi_2d,
    "lu": lu,
    "mvt": mvt,
    "seidel-2d": seidel_2d,
    "symm": symm,
    "syrk": syrk,
    "syr2k": syr2k,
    "trisolv": trisolv,
    "trmm": trmm,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    """All PolyBench kernels under the given programming model."""
    return [factory(model=model) for factory in APPLICATIONS.values()]
