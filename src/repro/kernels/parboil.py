"""Parboil OpenCL kernels (BFS, cutcp, lbm, sad, spmv, stencil)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    branchy_kernel,
    irregular_graph_kernel,
    nbody_kernel,
    spmv_kernel,
    stencil3d_kernel,
)

SUITE = "parboil"
_M = ParallelModel.OPENCL


def bfs(model: ParallelModel = _M) -> KernelSpec:
    return irregular_graph_kernel("BFS", SUITE, n=500_000, avg_degree=8,
                                  model=model)


def cutcp(model: ParallelModel = _M) -> KernelSpec:
    return nbody_kernel("cutcp", SUITE, n=8_000, cutoff=True, model=model)


def lbm(model: ParallelModel = _M) -> KernelSpec:
    return stencil3d_kernel("lbm", SUITE, n=100, points=19, model=model,
                            domain="fluid dynamics")


def sad(model: ParallelModel = _M) -> KernelSpec:
    return branchy_kernel("sad", SUITE, n=1_500_000, taken_probability=0.5,
                          work=2, model=model, domain="video encoding")


def spmv(model: ParallelModel = _M) -> KernelSpec:
    return spmv_kernel("spmv", SUITE, n=250_000, nnz_per_row=10, model=model)


def stencil(model: ParallelModel = _M) -> KernelSpec:
    return stencil3d_kernel("stencil", SUITE, n=128, model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "BFS": bfs,
    "cutcp": cutcp,
    "lbm": lbm,
    "sad": sad,
    "spmv": spmv,
    "stencil": stencil,
}


def all_specs(model: ParallelModel = _M) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
