"""AMD APP SDK OpenCL kernels (12 applications, Table 1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    branchy_kernel,
    elementwise_math_kernel,
    fft_like_kernel,
    matmul_kernel,
    reduction_kernel,
    scan_kernel,
    sort_pass_kernel,
    stencil2d_kernel,
    transpose_kernel,
    triangular_kernel,
)

SUITE = "amdsdk"
_M = ParallelModel.OPENCL


def binomial_option(model: ParallelModel = _M) -> KernelSpec:
    return elementwise_math_kernel("BinomialOption", SUITE, n=300_000,
                                   intensity=6, inner_steps=128, model=model,
                                   domain="finance")


def bitonic_sort(model: ParallelModel = _M) -> KernelSpec:
    return sort_pass_kernel("BitonicSort", SUITE, n=400_000, model=model)


def black_scholes(model: ParallelModel = _M) -> KernelSpec:
    return elementwise_math_kernel("BlackScholes", SUITE, n=1_000_000,
                                   intensity=4, inner_steps=16, model=model,
                                   domain="finance")


def fast_walsh_transform(model: ParallelModel = _M) -> KernelSpec:
    return fft_like_kernel("FastWalshTransform", SUITE, n=262_144, model=model)


def floyd_warshall(model: ParallelModel = _M) -> KernelSpec:
    return triangular_kernel("FloydWarshall", SUITE, n=700, model=model,
                             domain="graph analytics")


def matrix_multiplication(model: ParallelModel = _M) -> KernelSpec:
    return matmul_kernel("MatrixMultiplication", SUITE, n=256, model=model)


def matrix_transpose(model: ParallelModel = _M) -> KernelSpec:
    return transpose_kernel("MatrixTranspose", SUITE, n=1500, model=model)


def prefix_sum(model: ParallelModel = _M) -> KernelSpec:
    return scan_kernel("PrefixSum", SUITE, n=1_000_000, model=model)


def reduction(model: ParallelModel = _M) -> KernelSpec:
    return reduction_kernel("Reduction", SUITE, n=3_000_000, model=model)


def scan_large_arrays(model: ParallelModel = _M) -> KernelSpec:
    return scan_kernel("ScanLargeArrays", SUITE, n=2_000_000, model=model)


def simple_convolution(model: ParallelModel = _M) -> KernelSpec:
    return stencil2d_kernel("SimpleConvolution", SUITE, n=1024, points=9,
                            model=model, domain="image processing")


def sobel_filter(model: ParallelModel = _M) -> KernelSpec:
    return branchy_kernel("SobelFilter", SUITE, n=1_000_000,
                          taken_probability=0.45, work=2, model=model,
                          domain="image processing")


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "BinomialOption": binomial_option,
    "BitonicSort": bitonic_sort,
    "BlackScholes": black_scholes,
    "FastWalshTransform": fast_walsh_transform,
    "FloydWarshall": floyd_warshall,
    "MatrixMultiplication": matrix_multiplication,
    "MatrixTranspose": matrix_transpose,
    "PrefixSum": prefix_sum,
    "Reduction": reduction,
    "ScanLargeArrays": scan_large_arrays,
    "SimpleConvolution": simple_convolution,
    "SobelFilter": sobel_filter,
}


def all_specs(model: ParallelModel = _M) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
