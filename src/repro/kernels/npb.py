"""NAS Parallel Benchmarks (BT, CG, EP, FT, LU, MG, SP)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    elementwise_math_kernel,
    fft_like_kernel,
    spmv_kernel,
    stencil3d_kernel,
    triangular_kernel,
)

SUITE = "npb"


def bt(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil3d_kernel("BT", SUITE, n=64, model=model,
                            domain="fluid dynamics")


def cg(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return spmv_kernel("CG", SUITE, n=150_000, nnz_per_row=13, model=model,
                       domain="sparse solvers")


def ep(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return elementwise_math_kernel("EP", SUITE, n=2_000_000, intensity=5,
                                   inner_steps=24, model=model,
                                   domain="random numbers")


def ft(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return fft_like_kernel("FT", SUITE, n=524_288, model=model)


def lu_app(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("LU", SUITE, n=800, model=model,
                             domain="fluid dynamics")


def mg(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil3d_kernel("MG", SUITE, n=128, model=model,
                            domain="multigrid solvers")


def sp(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil3d_kernel("SP", SUITE, n=72, model=model,
                            domain="fluid dynamics")


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "BT": bt,
    "CG": cg,
    "EP": ep,
    "FT": ft,
    "LU": lu_app,
    "MG": mg,
    "SP": sp,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
