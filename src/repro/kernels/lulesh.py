"""LULESH proxy application (DARPA UHPC): representative hydrodynamics loops."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.expr import Array, CallExpr, Dim, IndirectIndex, LoopVar
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.stmt import Assign, For, Reduce
from repro.ir.types import DataType

SUITE = "lulesh"


def calc_force(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    """Element force loop: gather nodal data through the connectivity array,
    do substantial floating-point work and scatter back — the LULESH hot loop."""
    E, N = Dim("E"), Dim("N")
    nodelist = Array("nodelist", (E,), DataType.I64)
    coords = Array("coords", (N,))
    forces = Array("forces", (N,))
    sig = Array("sig", (E,))
    e, c = LoopVar("e"), LoopVar("c")
    gathered = coords[IndirectIndex(nodelist, e * 8 + c)]
    work = CallExpr("sqrt", gathered * gathered + sig[e] * sig[e]) \
        + CallExpr("fabs", gathered - sig[e])
    body = [
        For(e, E, [
            Assign(sig[e], sig[e] * 0.98),
            For(c, 8, [
                Reduce(forces[IndirectIndex(nodelist, e * 8 + c)], work, op="+"),
            ]),
        ], parallel=True, imbalance=0.1)
    ]
    return KernelSpec("lulesh", SUITE, [nodelist, coords, forces, sig], body,
                      {"E": 250_000, "N": 260_000}, model=model,
                      domain="hydrodynamics",
                      description="LULESH element force gather/scatter loop")


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "lulesh": calc_force,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
