"""Rodinia kernels (17 applications, Table 1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.expr import Array, CallExpr, Dim, IndirectIndex, LoopVar
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.stmt import Assign, For, If, Reduce
from repro.kernels._builders import (
    branchy_kernel,
    histogram_kernel,
    irregular_graph_kernel,
    matmul_kernel,
    nbody_kernel,
    stencil2d_kernel,
    triangular_kernel,
)

SUITE = "rodinia"


def kmeans(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    """kmeans assignment step: distance computation + argmin (Fig. 1a kernel)."""
    N, K, D = Dim("N"), Dim("K"), Dim("D")
    points = Array("points", (N, D))
    centers = Array("centers", (K, D))
    assign = Array("assign", (N,))
    best = Array("best", (N,))
    i, c, d = LoopVar("i"), LoopVar("c"), LoopVar("d")
    dist_term = (points[i, d] - centers[c, d]) * (points[i, d] - centers[c, d])
    body = [
        For(i, N, [
            Assign(best[i], 1.0e30),
            For(c, K, [
                Assign(assign[i], 0.0),
                For(d, D, [Reduce(assign[i], dist_term)]),
                If(assign[i] < best[i],
                   then=[Assign(best[i], assign[i])],
                   orelse=[],
                   taken_probability=0.2),
            ]),
        ], parallel=True)
    ]
    return KernelSpec("kmeans", SUITE, [points, centers, assign, best], body,
                      {"N": 60_000, "K": 16, "D": 16}, model=model,
                      domain="data mining",
                      description="k-means point-to-centroid assignment")


def backprop(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return matmul_kernel("backprop", SUITE, n=96, m=4096, k=16,
                         alpha_beta=False, model=model,
                         domain="machine learning")


def bfs(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return irregular_graph_kernel("bfs", SUITE, n=400_000, avg_degree=6,
                                  model=model)


def cfd(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return nbody_kernel("cfd", SUITE, n=4_000, cutoff=False, model=model,
                        domain="fluid dynamics")


def gaussian(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("gaussian", SUITE, n=600, model=model)


def hotspot(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("hotspot", SUITE, n=1024, flops_scale=2,
                            model=model, domain="physics simulation")


def lavamd(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return nbody_kernel("lavaMD", SUITE, n=7_000, model=model)


def leukocyte(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return nbody_kernel("leukocyte", SUITE, n=3_000, cutoff=True, model=model,
                        domain="medical imaging")


def lud(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return triangular_kernel("lud", SUITE, n=700, model=model)


def nn(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return nbody_kernel("nn", SUITE, n=50_000, cutoff=False, model=model,
                        domain="data mining")


def nw(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("nw", SUITE, n=1600, points=5, model=model,
                            domain="bioinformatics")


def needle(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return irregular_graph_kernel("needle", SUITE, n=120_000, avg_degree=4,
                                  branchy=True, model=model,
                                  domain="bioinformatics")


def particlefilter(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return branchy_kernel("particlefilter", SUITE, n=500_000,
                          taken_probability=0.35, work=3, model=model)


def pathfinder(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    """Dynamic-programming wavefront over a grid row."""
    N, C = Dim("N"), Dim("C")
    wall = Array("wall", (N, C))
    src = Array("src", (C,))
    dst = Array("dst", (C,))
    j = LoopVar("j")
    best = CallExpr("min", CallExpr("min", src[j - 1], src[j]), src[j + 1])
    body = [
        For(j, C - 2, [
            Assign(dst[j + 1], wall[1, j + 1] + best),
        ], parallel=True)
    ]
    return KernelSpec("pathfinder", SUITE, [wall, src, dst], body,
                      {"N": 100, "C": 400_000}, model=model,
                      domain="dynamic programming",
                      description="pathfinder row relaxation")


def srad(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return stencil2d_kernel("srad", SUITE, n=1000, points=5, flops_scale=3,
                            model=model, domain="image processing")


def streamcluster(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return histogram_kernel("streamcluster", SUITE, n=800_000, bins=2048,
                            model=model)


def b_plus_tree(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    """b+tree range queries: pointer-chasing style indirect accesses."""
    N, Q = Dim("N"), Dim("Q")
    keys = Array("keys", (N,))
    queries = Array("queries", (Q,))
    child = Array("child", (N,))
    result = Array("result", (Q,))
    q, lvl = LoopVar("q"), LoopVar("lvl")
    from repro.ir.types import DataType

    idx = Array("idx", (Q,), DataType.I64)
    body = [
        For(q, Q, [
            Assign(result[q], 0.0),
            For(lvl, 6, [
                Reduce(result[q], keys[IndirectIndex(idx, q)] + queries[q]),
            ]),
        ], parallel=True, imbalance=0.2)
    ]
    return KernelSpec("b+tree", SUITE, [keys, queries, child, result, idx],
                      body, {"N": 1_000_000, "Q": 60_000}, model=model,
                      domain="databases", description="B+ tree range queries")


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "b+tree": b_plus_tree,
    "backprop": backprop,
    "bfs": bfs,
    "cfd": cfd,
    "gaussian": gaussian,
    "hotspot": hotspot,
    "kmeans": kmeans,
    "lavaMD": lavamd,
    "leukocyte": leukocyte,
    "lud": lud,
    "nn": nn,
    "nw": nw,
    "needle": needle,
    "particlefilter": particlefilter,
    "pathfinder": pathfinder,
    "srad": srad,
    "streamcluster": streamcluster,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
