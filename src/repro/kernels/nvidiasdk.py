"""NVIDIA SDK OpenCL kernels (6 applications, Table 1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    dot_kernel,
    elementwise_math_kernel,
    matmul_kernel,
    matvec_kernel,
    stencil3d_kernel,
    streaming_kernel,
)

SUITE = "nvidiasdk"
_M = ParallelModel.OPENCL


def dot_product(model: ParallelModel = _M) -> KernelSpec:
    return dot_kernel("DotProduct", SUITE, n=4_000_000, model=model)


def fdtd3d(model: ParallelModel = _M) -> KernelSpec:
    return stencil3d_kernel("FDTD3D", SUITE, n=128, model=model)


def mat_vec_mul(model: ParallelModel = _M) -> KernelSpec:
    return matvec_kernel("MatVecMul", SUITE, n=2000, model=model)


def matrix_mul(model: ParallelModel = _M) -> KernelSpec:
    return matmul_kernel("MatrixMul", SUITE, n=320, model=model)


def mersenne_twister(model: ParallelModel = _M) -> KernelSpec:
    return elementwise_math_kernel("MersenneTwister", SUITE, n=2_000_000,
                                   intensity=3, inner_steps=16, model=model,
                                   domain="random numbers")


def vector_add(model: ParallelModel = _M) -> KernelSpec:
    return streaming_kernel("VectorAdd", SUITE, n=4_000_000, num_inputs=2,
                            flops_per_elem=2, model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "DotProduct": dot_product,
    "FDTD3D": fdtd3d,
    "MatVecMul": mat_vec_mul,
    "MatrixMul": matrix_mul,
    "MersenneTwister": mersenne_twister,
    "VectorAdd": vector_add,
}


def all_specs(model: ParallelModel = _M) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
