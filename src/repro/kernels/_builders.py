"""Parametric kernel-shape builders.

The ~120 benchmark kernels of Table 1 fall into a small number of structural
families (dense matrix products, stencils, streaming/element-wise kernels,
reductions, triangular solvers, irregular graph traversals, branchy
particle/image kernels, ...).  Each family is implemented once here as a
builder producing a :class:`~repro.frontend.spec.KernelSpec`; the per-suite
modules instantiate the builders with the parameters that characterise each
original benchmark (loop structure, arithmetic intensity, branchiness,
imbalance, working-set shape).
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.expr import (
    Array,
    CallExpr,
    Dim,
    IndirectIndex,
    LoopVar,
    Scalar,
)
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.stmt import Assign, For, If, Reduce
from repro.ir.types import DataType

__all__ = [
    "matmul_kernel",
    "matvec_kernel",
    "stencil1d_kernel",
    "stencil2d_kernel",
    "stencil3d_kernel",
    "streaming_kernel",
    "elementwise_math_kernel",
    "reduction_kernel",
    "dot_kernel",
    "triangular_kernel",
    "correlation_kernel",
    "irregular_graph_kernel",
    "spmv_kernel",
    "histogram_kernel",
    "nbody_kernel",
    "branchy_kernel",
    "scan_kernel",
    "transpose_kernel",
    "fft_like_kernel",
    "sort_pass_kernel",
]


def _spec(name: str, suite: str, arrays, body, base_sizes, model, **kwargs):
    return KernelSpec(name=name, suite=suite, arrays=arrays, body=body,
                      base_sizes=base_sizes, model=model, **kwargs)


# ----------------------------------------------------------------------
# dense linear algebra
# ----------------------------------------------------------------------
def matmul_kernel(name: str, suite: str, n: int = 180, m: Optional[int] = None,
                  k: Optional[int] = None, alpha_beta: bool = True,
                  model: ParallelModel = ParallelModel.OPENMP,
                  domain: str = "linear algebra") -> KernelSpec:
    """C = alpha*A*B + beta*C — gemm/2mm/3mm/syrk-style triple loop."""
    m = m or n
    k = k or n
    N, M, K = Dim("N"), Dim("M"), Dim("K")
    A = Array("A", (N, K))
    B = Array("B", (K, M))
    C = Array("C", (N, M))
    alpha = Scalar("alpha", 1.5)
    beta = Scalar("beta", 1.2)
    i, j, kk = LoopVar("i"), LoopVar("j"), LoopVar("k")
    inner = [Reduce(C[i, j], alpha.ref() * A[i, kk] * B[kk, j])]
    body_j = []
    if alpha_beta:
        body_j.append(Assign(C[i, j], C[i, j] * beta.ref()))
    body_j.append(For(kk, K, inner))
    body = [For(i, N, [For(j, M, body_j)], parallel=True)]
    return _spec(name, suite, [A, B, C], body,
                 {"N": n, "M": m, "K": k}, model,
                 scalars=[alpha, beta], domain=domain,
                 description="dense matrix-matrix product")


def matvec_kernel(name: str, suite: str, n: int = 900, transposed: bool = False,
                  model: ParallelModel = ParallelModel.OPENMP,
                  domain: str = "linear algebra") -> KernelSpec:
    """y = A*x (atax/bicg/mvt/gesummv-style doubly nested loop)."""
    N, M = Dim("N"), Dim("M")
    A = Array("A", (N, M))
    x = Array("x", (M,))
    y = Array("y", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    if transposed:
        access = A[j, i]
    else:
        access = A[i, j]
    body = [
        For(i, N, [
            Assign(y[i], 0.0),
            For(j, M, [Reduce(y[i], access * x[j])]),
        ], parallel=True)
    ]
    return _spec(name, suite, [A, x, y], body, {"N": n, "M": n}, model,
                 domain=domain, description="matrix-vector product")


def transpose_kernel(name: str, suite: str, n: int = 1024,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "linear algebra") -> KernelSpec:
    """B = A^T — strided accesses, purely memory bound."""
    N = Dim("N")
    A = Array("A", (N, N))
    B = Array("B", (N, N))
    i, j = LoopVar("i"), LoopVar("j")
    body = [For(i, N, [For(j, N, [Assign(B[j, i], A[i, j])])], parallel=True)]
    return _spec(name, suite, [A, B], body, {"N": n}, model, domain=domain,
                 description="matrix transpose")


def triangular_kernel(name: str, suite: str, n: int = 700,
                      flops_per_elem: int = 2, serial_advantage: float = 1.0,
                      model: ParallelModel = ParallelModel.OPENMP,
                      domain: str = "linear algebra") -> KernelSpec:
    """Triangular sweep (lu/cholesky/trisolv/trmm): imbalanced parallel loop."""
    N = Dim("N")
    A = Array("A", (N, N))
    b = Array("b", (N,))
    x = Array("x", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    inner = [Reduce(x[i], A[i, j] * b[j], op="+")]
    if flops_per_elem > 2:
        inner.append(Reduce(x[i], CallExpr("sqrt", A[i, j] + 1.0), op="+"))
    body = [
        For(i, N, [
            Assign(x[i], b[i]),
            For(j, N, inner),
            Assign(x[i], x[i] / A[i, i]),
        ], parallel=True, imbalance=0.6),
    ]
    return _spec(name, suite, [A, b, x], body, {"N": n}, model,
                 serial_advantage=serial_advantage, domain=domain,
                 description="triangular solve / factorization sweep")


def correlation_kernel(name: str, suite: str, n: int = 260,
                       with_sqrt: bool = True,
                       model: ParallelModel = ParallelModel.OPENMP,
                       domain: str = "data mining") -> KernelSpec:
    """correlation/covariance: column statistics then pairwise products."""
    N, M = Dim("N"), Dim("M")
    data = Array("data", (N, M))
    mean = Array("mean", (M,))
    corr = Array("corr", (M, M))
    i, j, k = LoopVar("i"), LoopVar("j"), LoopVar("k")
    stat_expr = data[k, i] if not with_sqrt else CallExpr("sqrt",
                                                          data[k, i] * data[k, i])
    body = [
        For(j, M, [
            Assign(mean[j], 0.0),
            For(k, N, [Reduce(mean[j], data[k, j])]),
            Assign(mean[j], mean[j] / 1000.0),
        ]),
        For(i, M, [
            For(j, M, [
                Assign(corr[i, j], 0.0),
                For(k, N, [Reduce(corr[i, j], stat_expr * data[k, j])]),
            ]),
        ], parallel=True, imbalance=0.3),
    ]
    return _spec(name, suite, [data, mean, corr], body, {"N": n, "M": n}, model,
                 domain=domain, description="correlation / covariance matrix")


# ----------------------------------------------------------------------
# stencils
# ----------------------------------------------------------------------
def stencil1d_kernel(name: str, suite: str, n: int = 400_000, points: int = 3,
                     sweeps: int = 1,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "pde solver") -> KernelSpec:
    """Jacobi-1D style kernel."""
    N = Dim("N")
    A = Array("A", (N,))
    B = Array("B", (N,))
    i = LoopVar("i")
    expr = A[i]
    if points >= 3:
        expr = (A[i + 1] + A[i] + A[i - 1]) * 0.3333
    body = [For(i, N - 2, [Assign(B[i + 1], expr)], parallel=True)]
    return _spec(name, suite, [A, B], body, {"N": n}, model, domain=domain,
                 description=f"{points}-point 1D stencil")


def stencil2d_kernel(name: str, suite: str, n: int = 700, points: int = 5,
                     flops_scale: int = 1,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "pde solver") -> KernelSpec:
    """Jacobi-2D / hotspot / seidel / fdtd-style 5- or 9-point stencil."""
    N = Dim("N")
    A = Array("A", (N, N))
    B = Array("B", (N, N))
    i, j = LoopVar("i"), LoopVar("j")
    expr = (A[i, j] + A[i, j - 1] + A[i, j + 1] + A[i - 1, j] + A[i + 1, j]) * 0.2
    if points >= 9:
        expr = expr + (A[i - 1, j - 1] + A[i - 1, j + 1] + A[i + 1, j - 1]
                       + A[i + 1, j + 1]) * 0.05
    for _ in range(max(0, flops_scale - 1)):
        expr = expr * 0.99 + A[i, j] * 0.01
    body = [
        For(i, N - 2, [
            For(j, N - 2, [Assign(B[i + 1, j + 1], expr)]),
        ], parallel=True)
    ]
    return _spec(name, suite, [A, B], body, {"N": n}, model, domain=domain,
                 description=f"{points}-point 2D stencil")


def stencil3d_kernel(name: str, suite: str, n: int = 90, points: int = 7,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "pde solver") -> KernelSpec:
    """conv-3d / FDTD3D / MG-style 3-D stencil."""
    N = Dim("N")
    A = Array("A", (N, N, N))
    B = Array("B", (N, N, N))
    i, j, k = LoopVar("i"), LoopVar("j"), LoopVar("k")
    expr = (A[i, j, k] + A[i, j, k - 1] + A[i, j, k + 1] + A[i, j - 1, k]
            + A[i, j + 1, k] + A[i - 1, j, k] + A[i + 1, j, k]) * 0.1428
    body = [
        For(i, N - 2, [
            For(j, N - 2, [
                For(k, N - 2, [Assign(B[i + 1, j + 1, k + 1], expr)]),
            ]),
        ], parallel=True)
    ]
    return _spec(name, suite, [A, B], body, {"N": n}, model, domain=domain,
                 description=f"{points}-point 3D stencil")


def fft_like_kernel(name: str, suite: str, n: int = 262_144,
                    model: ParallelModel = ParallelModel.OPENMP,
                    domain: str = "spectral methods") -> KernelSpec:
    """Butterfly-style strided kernel (FT / FFT / FastWalshTransform)."""
    N = Dim("N")
    re = Array("re", (N,))
    im = Array("im", (N,))
    tw = Array("tw", (N,))
    i = LoopVar("i")
    body = [
        For(i, N // 2, [
            Assign(re[i], re[i * 2] + tw[i] * re[i * 2 + 1]),
            Assign(im[i], im[i * 2] - tw[i] * im[i * 2 + 1]),
        ], parallel=True)
    ]
    return _spec(name, suite, [re, im, tw], body, {"N": n}, model, domain=domain,
                 description="butterfly / strided transform stage")


# ----------------------------------------------------------------------
# streaming / element-wise
# ----------------------------------------------------------------------
def streaming_kernel(name: str, suite: str, n: int = 2_000_000,
                     num_inputs: int = 2, flops_per_elem: int = 2,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "memory bandwidth") -> KernelSpec:
    """STREAM copy/scale/add/triad and vector-add style kernels."""
    N = Dim("N")
    arrays = [Array(chr(ord("a") + idx), (N,)) for idx in range(num_inputs)]
    out = Array("out", (N,))
    scalar = Scalar("s", 3.0)
    i = LoopVar("i")
    expr = arrays[0][i]
    for a in arrays[1:]:
        expr = expr + a[i]
    for _ in range(max(0, flops_per_elem - num_inputs)):
        expr = expr * scalar.ref()
    body = [For(i, N, [Assign(out[i], expr)], parallel=True)]
    return _spec(name, suite, arrays + [out], body, {"N": n}, model,
                 scalars=[scalar], domain=domain,
                 description="streaming element-wise kernel")


def elementwise_math_kernel(name: str, suite: str, n: int = 1_000_000,
                            intensity: int = 3, inner_steps: int = 1,
                            model: ParallelModel = ParallelModel.OPENMP,
                            domain: str = "financial / math") -> KernelSpec:
    """Compute-heavy per-element kernel (BlackScholes, BinomialOption, EP).

    ``inner_steps`` models the per-element iteration count of option pricers /
    hash functions / chemistry kernels, which is what makes these kernels
    arithmetically intense enough to be profitable on accelerators.
    """
    N = Dim("N")
    x = Array("x", (N,))
    y = Array("y", (N,))
    i, s = LoopVar("i"), LoopVar("s")
    expr = CallExpr("exp", y[i] * 0.5) + CallExpr("log", y[i] + 2.0)
    for _ in range(max(0, intensity - 1)):
        expr = expr * CallExpr("sqrt", y[i] + 1.0) + 0.5
    step_body = [Assign(y[i], expr * 0.5 + y[i] * 0.5)]
    if inner_steps > 1:
        elem_body = [Assign(y[i], x[i]), For(s, inner_steps, step_body)]
    else:
        elem_body = [Assign(y[i], x[i] + expr)]
    body = [For(i, N, elem_body, parallel=True)]
    return _spec(name, suite, [x, y], body, {"N": n}, model, domain=domain,
                 description="transcendental-heavy element-wise kernel")


# ----------------------------------------------------------------------
# reductions / scans
# ----------------------------------------------------------------------
def reduction_kernel(name: str, suite: str, n: int = 4_000_000, op: str = "+",
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "reduction") -> KernelSpec:
    """Sum/max reduction over a vector."""
    N = Dim("N")
    x = Array("x", (N,))
    acc = Scalar("acc", 0.0)
    i = LoopVar("i")
    body = [For(i, N, [Reduce(acc, x[i], op=op)], parallel=True,
                reduction=op)]
    return _spec(name, suite, [x], body, {"N": n}, model, scalars=[acc],
                 domain=domain, description=f"{op}-reduction")


def dot_kernel(name: str, suite: str, n: int = 2_000_000,
               model: ParallelModel = ParallelModel.OPENMP,
               domain: str = "linear algebra") -> KernelSpec:
    """Dot product of two vectors."""
    N = Dim("N")
    x = Array("x", (N,))
    y = Array("y", (N,))
    acc = Scalar("acc", 0.0)
    i = LoopVar("i")
    body = [For(i, N, [Reduce(acc, x[i] * y[i])], parallel=True, reduction="+")]
    return _spec(name, suite, [x, y], body, {"N": n}, model, scalars=[acc],
                 domain=domain, description="dot product")


def scan_kernel(name: str, suite: str, n: int = 1_000_000,
                model: ParallelModel = ParallelModel.OPENMP,
                domain: str = "primitives") -> KernelSpec:
    """Blocked prefix-sum pass (PrefixSum / ScanLargeArrays / Scan)."""
    N = Dim("N")
    x = Array("x", (N,))
    block = Array("block", (N // 256,))
    i, j = LoopVar("i"), LoopVar("j")
    body = [
        For(i, N // 256, [
            Assign(block[i], 0.0),
            For(j, 256, [Reduce(block[i], x[i * 256 + j])]),
        ], parallel=True)
    ]
    return _spec(name, suite, [x, block], body, {"N": n}, model, domain=domain,
                 description="blocked prefix sum")


def sort_pass_kernel(name: str, suite: str, n: int = 500_000,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "sorting") -> KernelSpec:
    """Bitonic/merge sort compare-exchange pass: branchy + strided."""
    N = Dim("N")
    keys = Array("keys", (N,))
    out = Array("out", (N,))
    i = LoopVar("i")
    body = [
        For(i, N // 2, [
            If(keys[i * 2] > keys[i * 2 + 1],
               then=[Assign(out[i * 2], keys[i * 2 + 1]),
                     Assign(out[i * 2 + 1], keys[i * 2])],
               orelse=[Assign(out[i * 2], keys[i * 2]),
                       Assign(out[i * 2 + 1], keys[i * 2 + 1])],
               taken_probability=0.5),
        ], parallel=True)
    ]
    return _spec(name, suite, [keys, out], body, {"N": n}, model, domain=domain,
                 description="compare-exchange sorting pass")


# ----------------------------------------------------------------------
# irregular / graph / sparse
# ----------------------------------------------------------------------
def irregular_graph_kernel(name: str, suite: str, n: int = 200_000,
                           avg_degree: int = 8, branchy: bool = True,
                           model: ParallelModel = ParallelModel.OPENMP,
                           domain: str = "graph analytics") -> KernelSpec:
    """BFS/needle-style kernel with indirect (data-dependent) accesses."""
    N, E = Dim("N"), Dim("E")
    offsets = Array("offsets", (N,), DataType.I64)
    edges = Array("edges", (E,), DataType.I64)
    cost = Array("cost", (N,))
    frontier = Array("frontier", (N,), DataType.I64)
    i, e = LoopVar("i"), LoopVar("e")
    neighbor_cost = cost[IndirectIndex(edges, e)]
    update = [Reduce(cost[IndirectIndex(edges, e)], cost[i] + 1.0, op="min")]
    inner_body = [If(neighbor_cost > cost[i], then=update, orelse=[],
                     taken_probability=0.3)] if branchy else update
    body = [
        For(i, N, [
            If(frontier[i] > 0.0,
               then=[For(e, Dim("E", factor=1.0 / max(1, n)), inner_body)],
               orelse=[],
               taken_probability=0.4),
        ], parallel=True, imbalance=0.5)
    ]
    return _spec(name, suite, [offsets, edges, cost, frontier], body,
                 {"N": n, "E": n * avg_degree}, model, domain=domain,
                 description="frontier-based graph traversal")


def spmv_kernel(name: str, suite: str, n: int = 300_000, nnz_per_row: int = 12,
                model: ParallelModel = ParallelModel.OPENMP,
                domain: str = "sparse linear algebra") -> KernelSpec:
    """CSR sparse matrix-vector multiply (Parboil/SHOC spmv, NPB CG)."""
    N, NNZ = Dim("N"), Dim("NNZ")
    values = Array("values", (NNZ,))
    colidx = Array("colidx", (NNZ,), DataType.I64)
    x = Array("x", (N,))
    y = Array("y", (N,))
    i, k = LoopVar("i"), LoopVar("k")
    body = [
        For(i, N, [
            Assign(y[i], 0.0),
            For(k, Dim("NNZ", factor=1.0 / max(1, n)), [
                Reduce(y[i], values[i * nnz_per_row + k]
                       * x[IndirectIndex(colidx, i * nnz_per_row + k)]),
            ]),
        ], parallel=True, imbalance=0.35)
    ]
    return _spec(name, suite, [values, colidx, x, y], body,
                 {"N": n, "NNZ": n * nnz_per_row}, model, domain=domain,
                 description="CSR sparse matrix-vector product")


def histogram_kernel(name: str, suite: str, n: int = 1_000_000, bins: int = 4096,
                     model: ParallelModel = ParallelModel.OPENMP,
                     domain: str = "data mining") -> KernelSpec:
    """Scatter/histogram kernel with atomic updates (kmeans assignment, MD5)."""
    N, B = Dim("N"), Dim("B")
    data = Array("data", (N,))
    labels = Array("labels", (N,), DataType.I64)
    hist = Array("hist", (B,))
    i = LoopVar("i")
    body = [
        For(i, N, [
            Reduce(hist[IndirectIndex(labels, i)], data[i], op="+"),
        ], parallel=True)
    ]
    return _spec(name, suite, [data, labels, hist], body, {"N": n, "B": bins},
                 model, domain=domain, description="atomic histogram / scatter")


# ----------------------------------------------------------------------
# n-body / particle / branchy kernels
# ----------------------------------------------------------------------
def nbody_kernel(name: str, suite: str, n: int = 6_000, cutoff: bool = True,
                 model: ParallelModel = ParallelModel.OPENMP,
                 domain: str = "molecular dynamics") -> KernelSpec:
    """All-pairs force kernel (lavaMD, MD, cutcp, leukocyte, nn)."""
    N = Dim("N")
    px = Array("px", (N,))
    py = Array("py", (N,))
    fx = Array("fx", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    dist = (px[i] - px[j]) * (px[i] - px[j]) + (py[i] - py[j]) * (py[i] - py[j])
    force = (px[j] - px[i]) / (CallExpr("sqrt", dist + 0.001) + 0.01)
    update = [Reduce(fx[i], force)]
    inner = [If(dist < 2.5, then=update, orelse=[], taken_probability=0.25)] \
        if cutoff else update
    body = [
        For(i, N, [
            Assign(fx[i], 0.0),
            For(j, N, inner),
        ], parallel=True, imbalance=0.15)
    ]
    return _spec(name, suite, [px, py, fx], body, {"N": n}, model, domain=domain,
                 description="all-pairs short-range force computation")


def branchy_kernel(name: str, suite: str, n: int = 800_000,
                   taken_probability: float = 0.5, work: int = 2,
                   model: ParallelModel = ParallelModel.OPENMP,
                   domain: str = "image / signal processing") -> KernelSpec:
    """Data-dependent branchy per-element kernel (particlefilter, sad, sobel)."""
    N = Dim("N")
    x = Array("x", (N,))
    y = Array("y", (N,))
    i = LoopVar("i")
    heavy = x[i]
    for _ in range(work):
        heavy = heavy * 1.7 + CallExpr("fabs", x[i] - 0.5)
    body = [
        For(i, N, [
            If(x[i] > 0.5,
               then=[Assign(y[i], heavy)],
               orelse=[Assign(y[i], x[i] * 0.25)],
               taken_probability=taken_probability),
        ], parallel=True)
    ]
    return _spec(name, suite, [x, y], body, {"N": n}, model, domain=domain,
                 description="branch-heavy element-wise kernel")
