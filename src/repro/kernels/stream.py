"""STREAM benchmark loops (copy, scale, add, triad)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import streaming_kernel

SUITE = "stream"


def copy(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("copy", SUITE, n=4_000_000, num_inputs=1,
                            flops_per_elem=0, model=model)


def scale(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("scale", SUITE, n=4_000_000, num_inputs=1,
                            flops_per_elem=2, model=model)


def add(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("add", SUITE, n=4_000_000, num_inputs=2,
                            flops_per_elem=2, model=model)


def triad(model: ParallelModel = ParallelModel.OPENMP) -> KernelSpec:
    return streaming_kernel("triad", SUITE, n=4_000_000, num_inputs=2,
                            flops_per_elem=3, model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "copy": copy,
    "scale": scale,
    "add": add,
    "triad": triad,
}


def all_specs(model: ParallelModel = ParallelModel.OPENMP) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
