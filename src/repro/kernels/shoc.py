"""SHOC OpenCL kernels (12 applications, Table 1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.frontend.spec import KernelSpec, ParallelModel
from repro.kernels._builders import (
    elementwise_math_kernel,
    fft_like_kernel,
    irregular_graph_kernel,
    matmul_kernel,
    nbody_kernel,
    reduction_kernel,
    scan_kernel,
    sort_pass_kernel,
    spmv_kernel,
    stencil2d_kernel,
    streaming_kernel,
)

SUITE = "shoc"
_M = ParallelModel.OPENCL


def bfs(model: ParallelModel = _M) -> KernelSpec:
    return irregular_graph_kernel("BFS", SUITE, n=300_000, avg_degree=10,
                                  model=model)


def fft(model: ParallelModel = _M) -> KernelSpec:
    return fft_like_kernel("FFT", SUITE, n=524_288, model=model)


def gemm(model: ParallelModel = _M) -> KernelSpec:
    return matmul_kernel("GEMM", SUITE, n=384, model=model)


def md(model: ParallelModel = _M) -> KernelSpec:
    return nbody_kernel("MD", SUITE, n=12_000, cutoff=True, model=model)


def md5(model: ParallelModel = _M) -> KernelSpec:
    return elementwise_math_kernel("MD5", SUITE, n=1_000_000, intensity=8,
                                   inner_steps=64, model=model,
                                   domain="cryptography")


def reduction(model: ParallelModel = _M) -> KernelSpec:
    return reduction_kernel("Reduction", SUITE, n=4_000_000, model=model)


def s3d(model: ParallelModel = _M) -> KernelSpec:
    return elementwise_math_kernel("S3D", SUITE, n=500_000, intensity=10,
                                   inner_steps=48, model=model,
                                   domain="combustion chemistry")


def scan(model: ParallelModel = _M) -> KernelSpec:
    return scan_kernel("Scan", SUITE, n=2_000_000, model=model)


def sort(model: ParallelModel = _M) -> KernelSpec:
    return sort_pass_kernel("Sort", SUITE, n=1_000_000, model=model)


def spmv(model: ParallelModel = _M) -> KernelSpec:
    return spmv_kernel("Spmv", SUITE, n=200_000, nnz_per_row=16, model=model)


def stencil2d(model: ParallelModel = _M) -> KernelSpec:
    return stencil2d_kernel("Stencil2D", SUITE, n=1500, model=model)


def triad(model: ParallelModel = _M) -> KernelSpec:
    return streaming_kernel("Triad", SUITE, n=4_000_000, num_inputs=2,
                            flops_per_elem=3, model=model)


APPLICATIONS: Dict[str, Callable[..., KernelSpec]] = {
    "BFS": bfs,
    "FFT": fft,
    "GEMM": gemm,
    "MD": md,
    "MD5": md5,
    "Reduction": reduction,
    "S3D": s3d,
    "Scan": scan,
    "Sort": sort,
    "Spmv": spmv,
    "Stencil2D": stencil2d,
    "Triad": triad,
}


def all_specs(model: ParallelModel = _M) -> List[KernelSpec]:
    return [factory(model=model) for factory in APPLICATIONS.values()]
