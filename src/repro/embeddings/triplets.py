"""Harvesting of knowledge-graph triplets from IR modules.

IR2Vec learns its seed embeddings from relations between IR entities.  We use
three relation kinds:

* ``type_of``:   opcode  → result data type,
* ``next_inst``: opcode  → opcode of the next instruction in the block,
* ``arg``:       opcode  → operand kind (opcode of the defining instruction,
  or ``arg:<dtype>`` / ``const:<dtype>`` / ``global`` for leaf operands).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable


@dataclasses.dataclass(frozen=True)
class Triplet:
    """One (head entity, relation, tail entity) fact."""

    head: str
    relation: str
    tail: str


def operand_entity(operand) -> str:
    """Entity name of an instruction operand."""
    if isinstance(operand, Instruction):
        return operand.opcode.value
    if isinstance(operand, Constant):
        return f"const:{operand.dtype.value}"
    if isinstance(operand, Argument):
        return f"arg:{operand.dtype.value}"
    if isinstance(operand, GlobalVariable):
        return "global"
    return "value"


def harvest_triplets(modules: Iterable[Module]) -> List[Triplet]:
    """Collect triplets from a corpus of IR modules."""
    triplets: List[Triplet] = []
    for module in modules:
        for function in module.functions:
            for block in function.blocks:
                insts = block.instructions
                for inst, nxt in zip(insts, insts[1:]):
                    triplets.append(Triplet(inst.opcode.value, "next_inst",
                                            nxt.opcode.value))
                for inst in insts:
                    triplets.append(Triplet(inst.opcode.value, "type_of",
                                            inst.dtype.value))
                    for operand in inst.operands:
                        triplets.append(Triplet(inst.opcode.value, "arg",
                                                operand_entity(operand)))
    return triplets


def entities_and_relations(triplets: Sequence[Triplet]):
    """Sorted unique entity and relation vocabularies of a triplet corpus."""
    entities = sorted({t.head for t in triplets} | {t.tail for t in triplets})
    relations = sorted({t.relation for t in triplets})
    return entities, relations
