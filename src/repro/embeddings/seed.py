"""Seed embedding vocabulary learned with a TransE-style objective.

TransE models a fact (h, r, t) as ``E[h] + R[r] ≈ E[t]``; training minimises
a margin ranking loss between true triplets and corrupted ones (random tail).
The resulting entity vectors are the IR2Vec "seed embeddings" from which
instruction vectors are composed.  A deterministic hash-seeded initialisation
is also provided so the pipeline works without a training corpus.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

import numpy as np

from repro.embeddings.triplets import Triplet, entities_and_relations
from repro.ir.instructions import Opcode
from repro.ir.types import DataType


def _hash_vector(token: str, dim: int) -> np.ndarray:
    """Deterministic pseudo-random unit vector derived from the token text."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(dim)
    return vec / (np.linalg.norm(vec) + 1e-12)


class SeedEmbeddingVocabulary:
    """Entity/relation embedding table over IR entities."""

    UNK = "<unk>"

    def __init__(self, dim: int = 64):
        if dim < 2:
            raise ValueError("embedding dimension must be >= 2")
        self.dim = dim
        self.entity_vectors: Dict[str, np.ndarray] = {}
        self.relation_vectors: Dict[str, np.ndarray] = {}
        self._init_default_entities()

    # ------------------------------------------------------------------
    def _init_default_entities(self) -> None:
        """Hash-seeded vectors for every known opcode / type / operand kind."""
        tokens: List[str] = [self.UNK, "global", "value"]
        tokens.extend(op.value for op in Opcode)
        tokens.extend(dt.value for dt in DataType)
        tokens.extend(f"const:{dt.value}" for dt in DataType)
        tokens.extend(f"arg:{dt.value}" for dt in DataType)
        for token in tokens:
            self.entity_vectors[token] = _hash_vector(token, self.dim)
        for relation in ("type_of", "next_inst", "arg"):
            self.relation_vectors[relation] = _hash_vector("rel:" + relation,
                                                           self.dim)

    # ------------------------------------------------------------------
    def vector(self, entity: str) -> np.ndarray:
        return self.entity_vectors.get(entity, self.entity_vectors[self.UNK])

    def relation(self, relation: str) -> np.ndarray:
        if relation not in self.relation_vectors:
            self.relation_vectors[relation] = _hash_vector("rel:" + relation,
                                                           self.dim)
        return self.relation_vectors[relation]

    @property
    def entities(self) -> List[str]:
        return list(self.entity_vectors)

    # ------------------------------------------------------------------
    def train(self, triplets: Sequence[Triplet], epochs: int = 30,
              lr: float = 0.05, margin: float = 1.0, batch_size: int = 512,
              seed: int = 0, max_triplets: int = 50_000) -> List[float]:
        """Fit the vocabulary with TransE margin-ranking updates.

        Returns the per-epoch mean loss (useful for convergence tests).
        """
        if not triplets:
            return []
        rng = np.random.default_rng(seed)
        if len(triplets) > max_triplets:
            idx = rng.choice(len(triplets), size=max_triplets, replace=False)
            triplets = [triplets[i] for i in idx]

        entities, relations = entities_and_relations(triplets)
        for e in entities:
            self.entity_vectors.setdefault(e, _hash_vector(e, self.dim))
        for r in relations:
            self.relation(r)

        ent_index = {e: i for i, e in enumerate(self.entity_vectors)}
        rel_index = {r: i for i, r in enumerate(self.relation_vectors)}
        E = np.stack([self.entity_vectors[e] for e in ent_index])
        R = np.stack([self.relation_vectors[r] for r in rel_index])

        heads = np.array([ent_index[t.head] for t in triplets])
        rels = np.array([rel_index[t.relation] for t in triplets])
        tails = np.array([ent_index[t.tail] for t in triplets])
        n = len(triplets)
        losses: List[float] = []

        for _ in range(epochs):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                batch = perm[start:start + batch_size]
                h, r, t = heads[batch], rels[batch], tails[batch]
                t_neg = rng.integers(0, E.shape[0], size=len(batch))
                pos_diff = E[h] + R[r] - E[t]
                neg_diff = E[h] + R[r] - E[t_neg]
                pos_dist = np.linalg.norm(pos_diff, axis=1)
                neg_dist = np.linalg.norm(neg_diff, axis=1)
                viol = (margin + pos_dist - neg_dist) > 0
                epoch_loss += float(np.sum(np.maximum(0.0,
                                                      margin + pos_dist - neg_dist)))
                if not np.any(viol):
                    continue
                hv, rv, tv, tnv = h[viol], r[viol], t[viol], t_neg[viol]
                pos_g = pos_diff[viol] / (pos_dist[viol][:, None] + 1e-12)
                neg_g = neg_diff[viol] / (neg_dist[viol][:, None] + 1e-12)
                np.add.at(E, hv, -lr * (pos_g - neg_g))
                np.add.at(E, tv, lr * pos_g)
                np.add.at(E, tnv, -lr * neg_g)
                np.add.at(R, rv, -lr * (pos_g - neg_g))
                # keep entity vectors on the unit sphere (TransE constraint)
                norms = np.linalg.norm(E, axis=1, keepdims=True)
                np.divide(E, np.maximum(norms, 1.0), out=E)
            losses.append(epoch_loss / n)

        for e, i in ent_index.items():
            self.entity_vectors[e] = E[i]
        for r, i in rel_index.items():
            self.relation_vectors[r] = R[i]
        return losses

    # ------------------------------------------------------------------
    def as_matrix(self) -> np.ndarray:
        return np.stack([self.entity_vectors[e] for e in self.entity_vectors])
