"""Flow-aware composition of seed embeddings into program vectors.

Following IR2Vec's symbolic/flow-aware encodings, each instruction vector is
a weighted combination of its opcode, result type and operand entity vectors;
the flow-aware variant additionally propagates the vectors of the defining
instructions of its operands (use-def chains) with a decay factor.  Function
vectors are the sum of their instruction vectors, program vectors the sum of
function vectors.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.embeddings.seed import SeedEmbeddingVocabulary
from repro.embeddings.triplets import operand_entity
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module

# weights of the opcode / type / argument contributions (IR2Vec uses a similar
# fixed weighting of the three entity groups)
W_OPCODE = 1.0
W_TYPE = 0.5
W_ARG = 0.2
FLOW_DECAY = 0.25


class IR2VecEncoder:
    """Encode IR modules as fixed-length distributed vectors."""

    def __init__(self, vocab: Optional[SeedEmbeddingVocabulary] = None,
                 dim: int = 64, flow_aware: bool = True,
                 flow_iterations: int = 2):
        self.vocab = vocab or SeedEmbeddingVocabulary(dim=dim)
        self.dim = self.vocab.dim
        self.flow_aware = flow_aware
        self.flow_iterations = int(flow_iterations)

    # ------------------------------------------------------------------
    def instruction_vector(self, inst: Instruction) -> np.ndarray:
        """Symbolic (non-flow) vector of a single instruction."""
        vec = W_OPCODE * self.vocab.vector(inst.opcode.value)
        vec = vec + W_TYPE * self.vocab.vector(inst.dtype.value)
        for operand in inst.operands:
            vec = vec + W_ARG * self.vocab.vector(operand_entity(operand))
        return vec

    def function_vectors(self, function: Function) -> Dict[Instruction, np.ndarray]:
        """Per-instruction vectors of one function (flow-aware if enabled)."""
        vectors: Dict[Instruction, np.ndarray] = {
            inst: self.instruction_vector(inst)
            for inst in function.instructions()
        }
        if not self.flow_aware:
            return vectors
        for _ in range(self.flow_iterations):
            updated: Dict[Instruction, np.ndarray] = {}
            for inst, vec in vectors.items():
                acc = vec.copy()
                for operand in inst.operands:
                    if isinstance(operand, Instruction) and operand in vectors:
                        acc += FLOW_DECAY * vectors[operand]
                updated[inst] = acc
            vectors = updated
        return vectors

    def encode_function(self, function: Function) -> np.ndarray:
        """Function-level vector (sum of instruction vectors)."""
        vectors = self.function_vectors(function)
        if not vectors:
            return np.zeros(self.dim)
        return np.sum(np.stack(list(vectors.values())), axis=0)

    def encode_module(self, module: Module, normalize: bool = True) -> np.ndarray:
        """Program-level vector of one module."""
        acc = np.zeros(self.dim)
        for function in module.defined_functions():
            acc += self.encode_function(function)
        if normalize:
            # scale-normalise so kernels of very different instruction counts
            # remain comparable (IR2Vec normalises per-program as well)
            norm = np.linalg.norm(acc)
            if norm > 0:
                acc = acc / norm * np.log1p(module.num_instructions())
        return acc


def encode_modules(modules: Sequence[Module],
                   encoder: Optional[IR2VecEncoder] = None,
                   normalize: bool = True) -> np.ndarray:
    """Encode a corpus of modules into a ``[num_modules, dim]`` matrix."""
    encoder = encoder or IR2VecEncoder()
    return np.stack([encoder.encode_module(m, normalize=normalize)
                     for m in modules])
