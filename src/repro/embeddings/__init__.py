"""IR2Vec-style distributed program embeddings (modality #2 of the MGA tuner).

The pipeline mirrors VenkataKeerthy et al. (TACO 2020): a **seed embedding
vocabulary** over IR entities (opcodes, types, operand kinds) is learned with
a TransE-style translational objective on (head, relation, tail) triplets
harvested from IR modules; per-instruction vectors are then composed from the
seed vectors and propagated along use-def (flow) chains to produce
flow-aware function- and program-level vectors.
"""

from repro.embeddings.triplets import Triplet, harvest_triplets
from repro.embeddings.seed import SeedEmbeddingVocabulary
from repro.embeddings.encoder import IR2VecEncoder, encode_modules

__all__ = [
    "Triplet",
    "harvest_triplets",
    "SeedEmbeddingVocabulary",
    "IR2VecEncoder",
    "encode_modules",
]
