"""OpenMP runtime configuration model (the tuning target of §4.1)."""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class OMPSchedule(str, enum.Enum):
    """OpenMP loop scheduling policies from Table 2 of the paper."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclasses.dataclass(frozen=True)
class OMPConfig:
    """One point of the OpenMP runtime search space.

    ``chunk_size = None`` means "compiler/runtime chosen" (static: trip/threads,
    dynamic/guided: 1), matching the paper's default configuration.
    """

    num_threads: int
    schedule: OMPSchedule = OMPSchedule.STATIC
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 or None")

    def effective_chunk(self, trip_count: int) -> int:
        """Concrete chunk size for a loop with ``trip_count`` iterations."""
        if self.chunk_size is not None:
            return max(1, min(self.chunk_size, max(1, trip_count)))
        if self.schedule == OMPSchedule.STATIC:
            return max(1, -(-trip_count // max(1, self.num_threads)))  # ceil div
        return 1

    def as_tuple(self):
        return (self.num_threads, self.schedule.value, self.chunk_size or 0)

    def label(self) -> str:
        chunk = self.chunk_size if self.chunk_size is not None else "auto"
        return f"t{self.num_threads}/{self.schedule.value}/c{chunk}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {"num_threads": self.num_threads,
                "schedule": self.schedule.value,
                "chunk_size": self.chunk_size}

    @classmethod
    def from_dict(cls, data: dict) -> "OMPConfig":
        return cls(num_threads=int(data["num_threads"]),
                   schedule=OMPSchedule(data["schedule"]),
                   chunk_size=(None if data["chunk_size"] is None
                               else int(data["chunk_size"])))


def default_omp_config(num_cores: int) -> OMPConfig:
    """The paper's baseline: all hardware threads, static schedule, auto chunk."""
    return OMPConfig(num_threads=num_cores, schedule=OMPSchedule.STATIC,
                     chunk_size=None)
