"""Loop-nest frontend: a small DSL describing parallel kernels.

The benchmark kernels of the paper (PolyBench, Rodinia, NAS, STREAM, ... ) are
re-expressed in this DSL (see :mod:`repro.kernels`).  A
:class:`~repro.frontend.spec.KernelSpec` captures the loop structure, array
accesses, arithmetic and the parallel (OpenMP / OpenCL) region.  It is lowered
to the miniature IR by :func:`~repro.frontend.lower.lower_to_ir`, and analysed
by :func:`~repro.frontend.analysis.analyze_spec` to obtain the workload
summary consumed by the performance simulator.
"""

from repro.frontend.expr import (
    AccessPattern,
    Affine,
    Array,
    ArrayRef,
    BinExpr,
    CallExpr,
    CompareExpr,
    ConstExpr,
    Dim,
    Expr,
    IndirectIndex,
    LoopVar,
    Scalar,
    ScalarRef,
)
from repro.frontend.stmt import Assign, For, If, Reduce, Statement
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.analysis import WorkloadSummary, analyze_spec
from repro.frontend.lower import lower_to_ir
from repro.frontend.openmp import OMPConfig, OMPSchedule, default_omp_config
from repro.frontend.opencl import NDRange, OpenCLKernelInstance

__all__ = [
    "Expr",
    "ConstExpr",
    "BinExpr",
    "CallExpr",
    "CompareExpr",
    "LoopVar",
    "Scalar",
    "ScalarRef",
    "Dim",
    "Affine",
    "Array",
    "ArrayRef",
    "IndirectIndex",
    "AccessPattern",
    "Statement",
    "Assign",
    "For",
    "If",
    "Reduce",
    "KernelSpec",
    "ParallelModel",
    "WorkloadSummary",
    "analyze_spec",
    "lower_to_ir",
    "OMPConfig",
    "OMPSchedule",
    "default_omp_config",
    "NDRange",
    "OpenCLKernelInstance",
]
