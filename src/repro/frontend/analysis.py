"""Static workload analysis of kernel specs.

:func:`analyze_spec` walks the statement/expression tree of a
:class:`~repro.frontend.spec.KernelSpec` at a concrete input scale and
produces a :class:`WorkloadSummary`: operation counts, memory traffic,
access-pattern mix, branch behaviour and load-imbalance descriptors.  The
performance simulator (:mod:`repro.simulator`) is a pure function of this
summary plus the machine model and runtime configuration — exactly the role
real execution plays in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.frontend.expr import (
    AccessPattern,
    ArrayRef,
    BinExpr,
    CallExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    LoopVar,
    ScalarRef,
    resolve_extent,
)
from repro.frontend.spec import KernelSpec
from repro.frontend.stmt import Assign, For, If, Reduce, Statement
from repro.ir.types import sizeof


@dataclasses.dataclass
class WorkloadSummary:
    """Aggregate execution counts of one kernel at one input size."""

    kernel: str
    scale: float
    parallel_trip: int
    total_iterations: float
    flops: float
    int_ops: float
    loads: float
    stores: float
    mem_bytes: float
    working_set_bytes: float
    branches: float
    expected_mispredicts: float
    calls: float
    unit_stride_frac: float
    strided_frac: float
    random_frac: float
    invariant_frac: float
    has_reduction: bool
    has_atomic: bool
    imbalance: float
    serial_fraction: float
    loop_depth: int
    serial_advantage: float
    bytes_per_parallel_iter: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic (roofline x-axis)."""
        return self.flops / max(1.0, self.mem_bytes)

    @property
    def work_per_parallel_iter(self) -> float:
        """Abstract work units per iteration of the parallel loop."""
        total_ops = self.flops + self.int_ops + self.loads + self.stores
        return total_ops / max(1, self.parallel_trip)


class _Counts:
    """Mutable accumulator used during the walk."""

    __slots__ = ("flops", "int_ops", "loads", "stores", "branches",
                 "mispredicts", "calls", "iters", "pattern_ops", "mem_bytes")

    def __init__(self) -> None:
        self.flops = 0.0
        self.int_ops = 0.0
        self.loads = 0.0
        self.stores = 0.0
        self.branches = 0.0
        self.mispredicts = 0.0
        self.calls = 0.0
        self.iters = 0.0
        self.mem_bytes = 0.0
        self.pattern_ops: Dict[AccessPattern, float] = {p: 0.0 for p in AccessPattern}

    def add(self, other: "_Counts", weight: float = 1.0) -> None:
        self.flops += other.flops * weight
        self.int_ops += other.int_ops * weight
        self.loads += other.loads * weight
        self.stores += other.stores * weight
        self.branches += other.branches * weight
        self.mispredicts += other.mispredicts * weight
        self.calls += other.calls * weight
        self.iters += other.iters * weight
        self.mem_bytes += other.mem_bytes * weight
        for p, v in other.pattern_ops.items():
            self.pattern_ops[p] += v * weight


# math intrinsics cost several FP operations each; this matches the relative
# weights used by classical roofline analyses
_CALL_FLOP_COST = {"sqrt": 4.0, "exp": 8.0, "log": 8.0, "sin": 8.0, "cos": 8.0,
                   "pow": 12.0, "fabs": 1.0, "min": 1.0, "max": 1.0}


def _count_expr(expr: Expr, counts: _Counts, innermost: Optional[LoopVar]) -> None:
    if isinstance(expr, ConstExpr) or isinstance(expr, ScalarRef):
        return
    if isinstance(expr, LoopVar):
        counts.int_ops += 0.25  # induction arithmetic mostly strength-reduced
        return
    if isinstance(expr, ArrayRef):
        _count_array_access(expr, counts, innermost, is_store=False)
        return
    if isinstance(expr, BinExpr):
        _count_expr(expr.lhs, counts, innermost)
        _count_expr(expr.rhs, counts, innermost)
        if expr.dtype.value in ("double", "float"):
            counts.flops += 1.0
        else:
            counts.int_ops += 1.0
        return
    if isinstance(expr, CompareExpr):
        _count_expr(expr.lhs, counts, innermost)
        _count_expr(expr.rhs, counts, innermost)
        counts.int_ops += 1.0
        return
    if isinstance(expr, CallExpr):
        # math intrinsics are inlined vector sequences, not dynamic calls;
        # they contribute FLOPs only (counts.calls tracks real call flow)
        for arg in expr.args:
            _count_expr(arg, counts, innermost)
        counts.flops += _CALL_FLOP_COST.get(expr.func, 4.0)
        return
    raise TypeError(f"unknown expression node {expr!r}")


def _count_array_access(ref: ArrayRef, counts: _Counts,
                        innermost: Optional[LoopVar], is_store: bool) -> None:
    elem = sizeof(ref.array.dtype)
    pattern = ref.access_pattern(innermost)
    counts.pattern_ops[pattern] += 1.0
    counts.mem_bytes += elem
    if is_store:
        counts.stores += 1.0
    else:
        counts.loads += 1.0
    # indirect accesses load the index array too
    for idx in ref.indices:
        if hasattr(idx, "array"):  # IndirectIndex
            counts.loads += 1.0
            counts.mem_bytes += sizeof(idx.array.dtype)
            counts.pattern_ops[AccessPattern.UNIT_STRIDE] += 1.0
    # address arithmetic
    counts.int_ops += max(0, ref.array.rank - 1)


def _count_statements(statements: Sequence[Statement], sizes: Dict[str, int],
                      innermost: Optional[LoopVar]) -> _Counts:
    counts = _Counts()
    for stmt in statements:
        if isinstance(stmt, (Assign, Reduce)):
            _count_expr(stmt.expr, counts, innermost)
            if isinstance(stmt, Reduce):
                counts.flops += 1.0  # the accumulate itself
                if isinstance(stmt.target, ArrayRef):
                    _count_array_access(stmt.target, counts, innermost,
                                        is_store=False)
            if isinstance(stmt.target, ArrayRef):
                _count_array_access(stmt.target, counts, innermost, is_store=True)
        elif isinstance(stmt, If):
            _count_expr(stmt.cond, counts, innermost)
            counts.branches += 1.0
            p = stmt.taken_probability
            counts.mispredicts += 2.0 * p * (1.0 - p)  # entropy-like proxy
            then_counts = _count_statements(stmt.then, sizes, innermost)
            else_counts = _count_statements(stmt.orelse, sizes, innermost)
            counts.add(then_counts, p)
            counts.add(else_counts, 1.0 - p)
        elif isinstance(stmt, For):
            trip = resolve_extent(stmt.extent, sizes)
            inner_var = _innermost_var(stmt)
            body_counts = _count_statements(stmt.body, sizes, inner_var)
            counts.add(body_counts, float(trip))
            counts.branches += float(trip)          # loop back-edge compare+branch
            counts.int_ops += float(trip)           # induction increment
            counts.iters += float(trip) * max(1.0, body_counts.iters or 1.0) \
                if body_counts.iters else float(trip)
        else:
            raise TypeError(f"unknown statement {stmt!r}")
    return counts


def _innermost_var(loop: For) -> LoopVar:
    inner = loop.inner_loops()
    if inner:
        return _innermost_var(inner[-1])
    return loop.var


def _serial_fraction(spec: KernelSpec, sizes: Dict[str, int]) -> float:
    """Fraction of total work that is outside the parallel loop."""
    parallel = spec.parallel_loop
    total = _count_statements(spec.body, sizes, None)
    if parallel is None:
        return 1.0
    par = _count_statements([parallel], sizes, None)

    def work(c: _Counts) -> float:
        return c.flops + c.int_ops + c.loads + c.stores + 1e-9

    return max(0.0, min(1.0, 1.0 - work(par) / work(total)))


def analyze_spec(spec: KernelSpec, scale: float = 1.0) -> WorkloadSummary:
    """Compute the workload summary of ``spec`` at input scale ``scale``."""
    sizes = spec.dim_sizes(scale)
    counts = _count_statements(spec.body, sizes, None)
    pattern_total = sum(counts.pattern_ops.values()) or 1.0
    parallel = spec.parallel_loop
    parallel_trip = spec.parallel_trip_count(scale)
    imbalance = parallel.imbalance if parallel is not None else 0.0
    has_reduction = any(isinstance(s, Reduce) for s in _walk_all(spec.body))
    has_atomic = any(
        isinstance(s, Reduce) and isinstance(s.target, ArrayRef) and s.target.is_indirect
        for s in _walk_all(spec.body)
    )
    mem_bytes = counts.mem_bytes
    return WorkloadSummary(
        kernel=spec.uid,
        scale=scale,
        parallel_trip=parallel_trip,
        total_iterations=max(counts.iters, 1.0),
        flops=counts.flops,
        int_ops=counts.int_ops,
        loads=counts.loads,
        stores=counts.stores,
        mem_bytes=mem_bytes,
        working_set_bytes=float(spec.working_set_bytes(scale)),
        branches=counts.branches,
        expected_mispredicts=counts.mispredicts,
        calls=counts.calls,
        unit_stride_frac=counts.pattern_ops[AccessPattern.UNIT_STRIDE] / pattern_total,
        strided_frac=counts.pattern_ops[AccessPattern.STRIDED] / pattern_total,
        random_frac=counts.pattern_ops[AccessPattern.RANDOM] / pattern_total,
        invariant_frac=counts.pattern_ops[AccessPattern.INVARIANT] / pattern_total,
        has_reduction=has_reduction,
        has_atomic=has_atomic,
        imbalance=imbalance,
        serial_fraction=_serial_fraction(spec, sizes),
        loop_depth=spec.loop_depth,
        serial_advantage=spec.serial_advantage,
        bytes_per_parallel_iter=mem_bytes / max(1, parallel_trip),
    )


def _walk_all(statements: Sequence[Statement]):
    for stmt in statements:
        yield from stmt.walk()
