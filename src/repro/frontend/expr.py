"""Expression AST of the loop-nest DSL.

The DSL is deliberately close to the C loop nests of the original benchmarks:
symbolic dimensions (:class:`Dim`), loop induction variables
(:class:`LoopVar`), multi-dimensional arrays indexed by affine expressions
(:class:`Array` / :class:`ArrayRef`), scalars and arithmetic expressions with
operator overloading.  Irregular (data-dependent) accesses are expressed with
:class:`IndirectIndex`, which is what distinguishes e.g. Rodinia ``bfs`` from
a dense stencil in both the generated IR and the simulated cache behaviour.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ir.types import DataType

Number = Union[int, float]


class AccessPattern(str, enum.Enum):
    """Memory access pattern of an array reference w.r.t. the innermost loop."""

    UNIT_STRIDE = "unit_stride"
    STRIDED = "strided"
    RANDOM = "random"
    INVARIANT = "invariant"


# ----------------------------------------------------------------------
# Symbolic sizes
# ----------------------------------------------------------------------
class Dim:
    """A symbolic problem dimension, resolved to an integer per input size.

    ``factor`` and ``offset`` allow derived extents such as ``N - 1`` or
    ``N // 2`` without a full symbolic algebra layer.
    """

    __slots__ = ("name", "factor", "offset", "minimum")

    def __init__(self, name: str, factor: float = 1.0, offset: int = 0,
                 minimum: int = 1):
        self.name = name
        self.factor = float(factor)
        self.offset = int(offset)
        self.minimum = int(minimum)

    def resolve(self, sizes: Dict[str, int]) -> int:
        if self.name not in sizes:
            raise KeyError(f"dimension {self.name!r} not provided (have {sizes})")
        value = int(math.floor(sizes[self.name] * self.factor)) + self.offset
        return max(self.minimum, value)

    def scaled(self, factor: float = 1.0, offset: int = 0) -> "Dim":
        return Dim(self.name, self.factor * factor, self.offset + offset,
                   self.minimum)

    def __sub__(self, other: int) -> "Dim":
        return self.scaled(offset=-int(other))

    def __add__(self, other: int) -> "Dim":
        return self.scaled(offset=int(other))

    def __floordiv__(self, other: int) -> "Dim":
        return self.scaled(factor=1.0 / int(other))

    def __repr__(self) -> str:
        return f"Dim({self.name}*{self.factor:g}{self.offset:+d})"


Extent = Union[int, Dim]


def resolve_extent(extent: Extent, sizes: Dict[str, int]) -> int:
    """Resolve a loop extent / array dimension to a concrete integer."""
    if isinstance(extent, Dim):
        return extent.resolve(sizes)
    return max(1, int(extent))


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base expression with operator overloading building the AST."""

    dtype: DataType = DataType.F64

    # arithmetic -------------------------------------------------------
    def __add__(self, other) -> "BinExpr":
        return BinExpr("+", self, wrap(other))

    def __radd__(self, other) -> "BinExpr":
        return BinExpr("+", wrap(other), self)

    def __sub__(self, other) -> "BinExpr":
        return BinExpr("-", self, wrap(other))

    def __rsub__(self, other) -> "BinExpr":
        return BinExpr("-", wrap(other), self)

    def __mul__(self, other) -> "BinExpr":
        return BinExpr("*", self, wrap(other))

    def __rmul__(self, other) -> "BinExpr":
        return BinExpr("*", wrap(other), self)

    def __truediv__(self, other) -> "BinExpr":
        return BinExpr("/", self, wrap(other))

    def __rtruediv__(self, other) -> "BinExpr":
        return BinExpr("/", wrap(other), self)

    def __neg__(self) -> "BinExpr":
        return BinExpr("-", ConstExpr(0.0), self)

    # comparisons ------------------------------------------------------
    def __lt__(self, other) -> "CompareExpr":
        return CompareExpr("<", self, wrap(other))

    def __gt__(self, other) -> "CompareExpr":
        return CompareExpr(">", self, wrap(other))

    def __le__(self, other) -> "CompareExpr":
        return CompareExpr("<=", self, wrap(other))

    def __ge__(self, other) -> "CompareExpr":
        return CompareExpr(">=", self, wrap(other))

    # traversal --------------------------------------------------------
    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self) -> Iterable["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()


def wrap(value: Union[Expr, Number]) -> Expr:
    """Coerce Python numbers to :class:`ConstExpr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return ConstExpr(value)
    raise TypeError(f"cannot use {value!r} in a DSL expression")


class ConstExpr(Expr):
    """A numeric literal."""

    def __init__(self, value: Number, dtype: Optional[DataType] = None):
        self.value = value
        if dtype is not None:
            self.dtype = dtype
        else:
            self.dtype = DataType.I64 if isinstance(value, int) else DataType.F64

    def __repr__(self) -> str:
        return f"Const({self.value})"


class BinExpr(Expr):
    """Binary arithmetic expression ``lhs op rhs`` with op in ``+ - * /``."""

    OPS = ("+", "-", "*", "/", "%", "min", "max")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self.OPS:
            raise ValueError(f"unsupported binary op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = (
            DataType.F64
            if DataType.F64 in (lhs.dtype, rhs.dtype)
            or DataType.F32 in (lhs.dtype, rhs.dtype)
            else DataType.I64
        )

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class CompareExpr(Expr):
    """Comparison producing a boolean (used by :class:`repro.frontend.stmt.If`)."""

    OPS = ("<", ">", "<=", ">=", "==", "!=")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self.OPS:
            raise ValueError(f"unsupported comparison {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = DataType.I1

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class CallExpr(Expr):
    """Math intrinsic call (sqrt/exp/log/sin/cos/pow/fabs/min/max)."""

    FUNCTIONS = ("sqrt", "exp", "log", "sin", "cos", "pow", "fabs", "min", "max")

    def __init__(self, func: str, *args: Union[Expr, Number]):
        if func not in self.FUNCTIONS:
            raise ValueError(f"unsupported intrinsic {func!r}")
        self.func = func
        self.args: Tuple[Expr, ...] = tuple(wrap(a) for a in args)
        self.dtype = DataType.F64

    def children(self) -> Sequence[Expr]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


def sqrt(x) -> CallExpr:
    return CallExpr("sqrt", x)


def exp(x) -> CallExpr:
    return CallExpr("exp", x)


def log(x) -> CallExpr:
    return CallExpr("log", x)


def fabs(x) -> CallExpr:
    return CallExpr("fabs", x)


def pow_(x, y) -> CallExpr:
    return CallExpr("pow", x, y)


def minimum(x, y) -> CallExpr:
    return CallExpr("min", x, y)


def maximum(x, y) -> CallExpr:
    return CallExpr("max", x, y)


# ----------------------------------------------------------------------
# Variables
# ----------------------------------------------------------------------
class LoopVar(Expr):
    """A loop induction variable (integer typed)."""

    def __init__(self, name: str):
        self.name = name
        self.dtype = DataType.I64

    def __hash__(self) -> int:
        return hash(("loopvar", self.name))

    def __eq__(self, other) -> bool:  # type: ignore[override]
        return isinstance(other, LoopVar) and other.name == self.name

    def __repr__(self) -> str:
        return f"LoopVar({self.name})"


class Scalar:
    """A named scalar kernel parameter (e.g. ``alpha``, ``beta``)."""

    __slots__ = ("name", "dtype", "value")

    def __init__(self, name: str, value: float = 1.0,
                 dtype: DataType = DataType.F64):
        self.name = name
        self.value = value
        self.dtype = dtype

    def ref(self) -> "ScalarRef":
        return ScalarRef(self)

    def __repr__(self) -> str:
        return f"Scalar({self.name}={self.value})"


class ScalarRef(Expr):
    """Use of a scalar parameter inside an expression."""

    def __init__(self, scalar: Scalar):
        self.scalar = scalar
        self.dtype = scalar.dtype

    def __repr__(self) -> str:
        return f"ScalarRef({self.scalar.name})"


# ----------------------------------------------------------------------
# Affine index expressions
# ----------------------------------------------------------------------
class Affine:
    """A (small) affine combination of loop variables: ``sum(c_i * v_i) + k``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict[LoopVar, int]] = None, const: int = 0):
        self.coeffs: Dict[LoopVar, int] = dict(coeffs or {})
        self.const = int(const)

    @classmethod
    def from_value(cls, value: Union["Affine", LoopVar, int, BinExpr]) -> "Affine":
        if isinstance(value, Affine):
            return value
        if isinstance(value, LoopVar):
            return cls({value: 1}, 0)
        if isinstance(value, int):
            return cls({}, value)
        if isinstance(value, ConstExpr) and isinstance(value.value, int):
            return cls({}, value.value)
        if isinstance(value, BinExpr):
            lhs = cls.from_value(value.lhs)  # may raise for non-affine
            rhs = cls.from_value(value.rhs)
            if value.op == "+":
                return lhs._combine(rhs, 1)
            if value.op == "-":
                return lhs._combine(rhs, -1)
            if value.op == "*":
                if not lhs.coeffs:
                    return rhs.scale(lhs.const)
                if not rhs.coeffs:
                    return lhs.scale(rhs.const)
        raise ValueError(f"index expression {value!r} is not affine")

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + sign * coeff
        return Affine(coeffs, self.const + sign * other.const)

    def scale(self, factor: int) -> "Affine":
        return Affine({v: c * factor for v, c in self.coeffs.items()},
                      self.const * factor)

    def coefficient(self, var: LoopVar) -> int:
        return self.coeffs.get(var, 0)

    def variables(self) -> List[LoopVar]:
        return list(self.coeffs)

    def __repr__(self) -> str:
        terms = [f"{c}*{v.name}" for v, c in self.coeffs.items()]
        terms.append(str(self.const))
        return " + ".join(terms)


class IndirectIndex:
    """A data-dependent index ``index_array[affine]`` (irregular access)."""

    __slots__ = ("array", "inner")

    def __init__(self, array: "Array", inner: Union[Affine, LoopVar, int]):
        self.array = array
        self.inner = Affine.from_value(inner)

    def __repr__(self) -> str:
        return f"{self.array.name}[{self.inner!r}]"


IndexLike = Union[Affine, LoopVar, int, BinExpr, IndirectIndex]


# ----------------------------------------------------------------------
# Arrays
# ----------------------------------------------------------------------
class Array:
    """A multi-dimensional array kernel argument."""

    __slots__ = ("name", "dims", "dtype")

    def __init__(self, name: str, dims: Sequence[Extent],
                 dtype: DataType = DataType.F64):
        self.name = name
        self.dims: Tuple[Extent, ...] = tuple(dims)
        self.dtype = dtype

    @property
    def rank(self) -> int:
        return len(self.dims)

    def num_elements(self, sizes: Dict[str, int]) -> int:
        total = 1
        for d in self.dims:
            total *= resolve_extent(d, sizes)
        return total

    def size_bytes(self, sizes: Dict[str, int]) -> int:
        from repro.ir.types import sizeof

        return self.num_elements(sizes) * sizeof(self.dtype)

    def __getitem__(self, index) -> "ArrayRef":
        if not isinstance(index, tuple):
            index = (index,)
        if len(index) != self.rank:
            raise ValueError(
                f"array {self.name} has rank {self.rank}, got {len(index)} indices"
            )
        return ArrayRef(self, index)

    def __repr__(self) -> str:
        return f"Array({self.name}, dims={self.dims}, {self.dtype})"


class ArrayRef(Expr):
    """A subscripted array reference ``A[i, j]``; usable as value or target."""

    def __init__(self, array: Array, indices: Sequence[IndexLike]):
        self.array = array
        self.indices: List[Union[Affine, IndirectIndex]] = []
        for idx in indices:
            if isinstance(idx, IndirectIndex):
                self.indices.append(idx)
            else:
                self.indices.append(Affine.from_value(idx))
        self.dtype = array.dtype

    @property
    def is_indirect(self) -> bool:
        return any(isinstance(i, IndirectIndex) for i in self.indices)

    def access_pattern(self, innermost: Optional[LoopVar]) -> AccessPattern:
        """Classify the access w.r.t. the innermost loop variable."""
        if self.is_indirect:
            return AccessPattern.RANDOM
        if innermost is None:
            return AccessPattern.INVARIANT
        # last index dimension varying with the innermost variable => unit stride
        last = self.indices[-1]
        assert isinstance(last, Affine)
        if last.coefficient(innermost) == 1:
            return AccessPattern.UNIT_STRIDE
        for idx in self.indices[:-1]:
            if isinstance(idx, Affine) and idx.coefficient(innermost) != 0:
                return AccessPattern.STRIDED
        if last.coefficient(innermost) != 0:
            return AccessPattern.STRIDED
        return AccessPattern.INVARIANT

    def children(self) -> Sequence[Expr]:
        return ()

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.array.name}[{idx}]"
