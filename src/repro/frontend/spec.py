"""Kernel specifications: the unit of tuning in the reproduction.

A :class:`KernelSpec` is the DSL analogue of "one OpenMP loop region" or "one
OpenCL kernel" in the paper: a loop nest with a designated parallel loop, the
arrays it touches and descriptive metadata.  Specs are created by
:mod:`repro.kernels`, lowered to IR by :mod:`repro.frontend.lower`, analysed
by :mod:`repro.frontend.analysis` and executed by :mod:`repro.simulator`.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional, Sequence

from repro.frontend.expr import Array, Scalar, resolve_extent
from repro.frontend.stmt import For, Statement, find_parallel_loop, loop_nest_depth


class ParallelModel(str, enum.Enum):
    """Programming model of the kernel's parallel region."""

    OPENMP = "openmp"
    OPENCL = "opencl"
    SERIAL = "serial"


class KernelSpec:
    """A parallel code region expressed in the loop-nest DSL.

    Parameters
    ----------
    name / suite:
        Kernel and benchmark-suite identifiers (e.g. ``gemm`` / ``polybench``).
    arrays / scalars:
        Kernel arguments.
    body:
        Top-level statements.  Exactly one loop should be marked
        ``parallel=True``; statements outside it model the serial fraction.
    base_sizes:
        Default value of each symbolic dimension at ``scale = 1.0``.
    model:
        Programming model (OpenMP loop or OpenCL NDRange kernel).
    serial_advantage:
        >1.0 means the serial version of the region is faster than the
        parallel one at any thread count (e.g. PolyBench ``trisolv`` in the
        paper); the simulator adds the corresponding parallel overhead.
    domain:
        Free-text application domain (linear algebra, data mining, ...).
    """

    def __init__(
        self,
        name: str,
        suite: str,
        arrays: Sequence[Array],
        body: Sequence[Statement],
        base_sizes: Dict[str, int],
        scalars: Sequence[Scalar] = (),
        model: ParallelModel = ParallelModel.OPENMP,
        serial_advantage: float = 1.0,
        domain: str = "general",
        description: str = "",
    ):
        self.name = name
        self.suite = suite
        self.arrays: List[Array] = list(arrays)
        self.scalars: List[Scalar] = list(scalars)
        self.body: List[Statement] = list(body)
        self.base_sizes = dict(base_sizes)
        self.model = ParallelModel(model)
        self.serial_advantage = float(serial_advantage)
        self.domain = domain
        self.description = description or name
        if self.model != ParallelModel.SERIAL and self.parallel_loop is None:
            raise ValueError(f"kernel {name!r} has no parallel loop")

    # ------------------------------------------------------------------
    @property
    def uid(self) -> str:
        """Stable unique identifier ``suite/name``."""
        return f"{self.suite}/{self.name}"

    @property
    def parallel_loop(self) -> Optional[For]:
        return find_parallel_loop(self.body)

    @property
    def loop_depth(self) -> int:
        return loop_nest_depth(self.body)

    # ------------------------------------------------------------------
    # problem sizing
    # ------------------------------------------------------------------
    def dim_sizes(self, scale: float = 1.0) -> Dict[str, int]:
        """Concrete dimension sizes at a given linear scale factor."""
        return {
            name: max(2, int(round(base * scale)))
            for name, base in self.base_sizes.items()
        }

    def working_set_bytes(self, scale: float = 1.0) -> int:
        """Total bytes of all arrays at the given scale."""
        sizes = self.dim_sizes(scale)
        return sum(a.size_bytes(sizes) for a in self.arrays)

    def scale_for_bytes(self, target_bytes: float) -> float:
        """Scale factor at which the working set is ~``target_bytes``.

        Used by the dataset builder to generate the paper's 30 input sizes
        spanning 3.5 KB – 0.5 GB (stressing L1 / L2 / L3 to different
        degrees).  Solved by bisection on the monotone working-set function.
        """
        lo, hi = 1e-3, 1.0
        while self.working_set_bytes(hi) < target_bytes and hi < 1e5:
            hi *= 2.0
        for _ in range(60):
            mid = math.sqrt(lo * hi)
            if self.working_set_bytes(mid) < target_bytes:
                lo = mid
            else:
                hi = mid
        return hi

    def parallel_trip_count(self, scale: float = 1.0) -> int:
        loop = self.parallel_loop
        if loop is None:
            return 1
        return resolve_extent(loop.extent, self.dim_sizes(scale))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (f"KernelSpec({self.uid}, model={self.model.value}, "
                f"arrays={len(self.arrays)}, depth={self.loop_depth})")
