"""OpenCL execution configuration model (heterogeneous device mapping, §4.2)."""

from __future__ import annotations

import dataclasses

from repro.frontend.spec import KernelSpec


@dataclasses.dataclass(frozen=True)
class NDRange:
    """Global / local work sizes of an OpenCL kernel launch."""

    global_size: int
    local_size: int = 64

    def __post_init__(self) -> None:
        if self.global_size < 1 or self.local_size < 1:
            raise ValueError("NDRange sizes must be positive")

    @property
    def num_workgroups(self) -> int:
        return max(1, -(-self.global_size // self.local_size))


@dataclasses.dataclass
class OpenCLKernelInstance:
    """One labelled point of the device-mapping dataset.

    Mirrors the Ben-Nun et al. dataset schema used by the paper: a kernel plus
    its host→device transfer size and workgroup size, to be labelled with the
    faster device (CPU or GPU).
    """

    spec: KernelSpec
    transfer_bytes: float
    wgsize: int
    scale: float = 1.0

    @property
    def ndrange(self) -> NDRange:
        return NDRange(global_size=max(self.wgsize, self.spec.parallel_trip_count(self.scale)),
                       local_size=self.wgsize)

    def feature_dict(self) -> dict:
        return {
            "transfer_bytes": float(self.transfer_bytes),
            "wgsize": float(self.wgsize),
        }
