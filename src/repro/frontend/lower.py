"""Lowering of kernel specs to the miniature IR.

This plays the role of ``clang -O1 -emit-llvm`` in the paper's pipeline: it
turns the loop-nest DSL into SSA instructions (phi-based counted loops,
``getelementptr``/``load``/``store`` memory access, arithmetic, branches) plus
the OpenMP outlining / OpenCL work-item structure that ProGraML-style graphs
capture through call-flow edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.frontend.expr import (
    Affine,
    Array,
    ArrayRef,
    BinExpr,
    CallExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    IndirectIndex,
    LoopVar,
    ScalarRef,
    resolve_extent,
)
from repro.frontend.spec import KernelSpec, ParallelModel
from repro.frontend.stmt import Assign, For, If, Reduce, Statement
from repro.ir import (
    Argument,
    DataType,
    Function,
    IRBuilder,
    Module,
    Opcode,
    verify_module,
)
from repro.ir.types import is_float, pointer_to
from repro.ir.values import Value

_CALL_OPCODE = {
    "sqrt": Opcode.SQRT,
    "exp": Opcode.EXP,
    "log": Opcode.LOG,
    "sin": Opcode.SIN,
    "cos": Opcode.COS,
    "pow": Opcode.POW,
    "fabs": Opcode.FABS,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
}

_BIN_FLOAT = {"+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL, "/": Opcode.FDIV}
_BIN_INT = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.SDIV,
            "%": Opcode.SREM}


class _LoweringContext:
    """Per-function lowering state: builder, loop-variable map, array globals."""

    def __init__(self, builder: IRBuilder, function: Function,
                 array_values: Dict[str, Value], sizes: Dict[str, int]):
        self.builder = builder
        self.function = function
        self.array_values = array_values
        self.sizes = sizes
        self.loop_values: Dict[str, Value] = {}


def lower_to_ir(spec: KernelSpec, verify: bool = True) -> Module:
    """Lower ``spec`` to a :class:`repro.ir.Module`.

    The module contains a driver function (``<name>_main``) and, for OpenMP
    kernels, an outlined parallel-region function reached through an
    ``omp.fork`` call; OpenCL kernels become a work-item function whose
    parallel dimension is read from ``get_global_id``.
    """
    sizes = spec.dim_sizes(1.0)
    module = Module(spec.name, metadata={
        "suite": spec.suite,
        "model": spec.model.value,
        "kernel_uid": spec.uid,
    })
    array_values: Dict[str, Value] = {}
    for array in spec.arrays:
        gv = module.add_global(array.name, pointer_to(array.dtype),
                               num_elements=array.num_elements(sizes))
        array_values[array.name] = gv

    if spec.model == ParallelModel.OPENCL:
        _lower_opencl(spec, module, array_values, sizes)
    else:
        _lower_openmp(spec, module, array_values, sizes)

    if verify:
        verify_module(module)
    return module


# ----------------------------------------------------------------------
# OpenMP lowering: driver + outlined parallel region
# ----------------------------------------------------------------------
def _lower_openmp(spec: KernelSpec, module: Module,
                  array_values: Dict[str, Value], sizes: Dict[str, int]) -> None:
    outlined_name = f"{spec.name}.omp_outlined"
    parallel_loop = spec.parallel_loop

    # --- outlined function containing the parallel loop nest -----------
    if parallel_loop is not None:
        args = [Argument(f"arg.{a.name}", pointer_to(a.dtype), i)
                for i, a in enumerate(spec.arrays)]
        outlined = Function(outlined_name, args, DataType.VOID,
                            metadata={"omp.outlined": True,
                                      "kernel_uid": spec.uid})
        module.add_function(outlined)
        entry = outlined.add_block("entry")
        builder = IRBuilder(entry)
        # arguments shadow the globals inside the outlined region
        local_arrays = dict(array_values)
        for a, arg in zip(spec.arrays, args):
            local_arrays[a.name] = arg
        ctx = _LoweringContext(builder, outlined, local_arrays, sizes)
        _lower_statements([parallel_loop], ctx, parallel_for=parallel_loop)
        builder.omp_barrier()
        builder.ret()

    # --- driver: serial statements + fork ------------------------------
    main = Function(f"{spec.name}_main", [], DataType.VOID,
                    metadata={"kernel_uid": spec.uid, "driver": True})
    module.add_function(main)
    entry = main.add_block("entry")
    builder = IRBuilder(entry)
    ctx = _LoweringContext(builder, main, array_values, sizes)
    for stmt in spec.body:
        if stmt is parallel_loop or _contains(stmt, parallel_loop):
            builder.omp_fork(outlined_name, list(array_values.values()))
        else:
            _lower_statements([stmt], ctx, parallel_for=None)
    builder.ret()


def _contains(stmt: Statement, target: Optional[Statement]) -> bool:
    if target is None:
        return False
    return any(s is target for s in stmt.walk())


# ----------------------------------------------------------------------
# OpenCL lowering: one work-item function
# ----------------------------------------------------------------------
def _lower_opencl(spec: KernelSpec, module: Module,
                  array_values: Dict[str, Value], sizes: Dict[str, int]) -> None:
    parallel_loop = spec.parallel_loop
    args = [Argument(f"arg.{a.name}", pointer_to(a.dtype), i)
            for i, a in enumerate(spec.arrays)]
    kernel = Function(f"{spec.name}_kernel", args, DataType.VOID,
                      metadata={"opencl.kernel": True, "kernel_uid": spec.uid})
    module.add_function(kernel)
    entry = kernel.add_block("entry")
    builder = IRBuilder(entry)
    local_arrays = dict(array_values)
    for a, arg in zip(spec.arrays, args):
        local_arrays[a.name] = arg
    ctx = _LoweringContext(builder, kernel, local_arrays, sizes)
    if parallel_loop is not None:
        gid = builder.get_global_id(0)
        ctx.loop_values[parallel_loop.var.name] = gid
        # guard: if (gid < extent) { body }
        extent = builder.const_int(resolve_extent(parallel_loop.extent, sizes))
        cond = builder.icmp("slt", gid, extent)
        body_block = kernel.add_block("wi.body")
        exit_block = kernel.add_block("wi.exit")
        builder.cond_br(cond, body_block, exit_block)
        builder.position_at_end(body_block)
        _lower_statements(parallel_loop.body, ctx, parallel_for=None)
        builder.br(exit_block)
        builder.position_at_end(exit_block)
    builder.ret()


# ----------------------------------------------------------------------
# statement lowering
# ----------------------------------------------------------------------
def _lower_statements(statements: Sequence[Statement], ctx: _LoweringContext,
                      parallel_for: Optional[For]) -> None:
    for stmt in statements:
        if isinstance(stmt, For):
            _lower_for(stmt, ctx, parallel=stmt is parallel_for)
        elif isinstance(stmt, (Assign, Reduce)):
            _lower_assign(stmt, ctx)
        elif isinstance(stmt, If):
            _lower_if(stmt, ctx)
        else:
            raise TypeError(f"cannot lower statement {stmt!r}")


def _lower_for(loop: For, ctx: _LoweringContext, parallel: bool = False) -> None:
    builder = ctx.builder
    function = ctx.function
    trip = resolve_extent(loop.extent, ctx.sizes)
    prefix = f"{loop.var.name}"

    header = function.add_block(f"{prefix}.header")
    body = function.add_block(f"{prefix}.body")
    latch = function.add_block(f"{prefix}.latch")
    exit_block = function.add_block(f"{prefix}.exit")

    preheader = builder.block
    builder.br(header)

    builder.position_at_end(header)
    iv = builder.phi(DataType.I64, name=f"{prefix}.iv")
    if parallel:
        iv.metadata["omp.induction"] = True
    builder.add_incoming(iv, builder.const_int(0), preheader)
    bound = builder.const_int(trip)
    cond = builder.icmp("slt", iv, bound, name=f"{prefix}.cond")
    builder.cond_br(cond, body, exit_block)

    builder.position_at_end(body)
    outer_value = ctx.loop_values.get(loop.var.name)
    ctx.loop_values[loop.var.name] = iv
    _lower_statements(loop.body, ctx, parallel_for=None)
    builder.br(latch)

    builder.position_at_end(latch)
    step = builder.add(iv, builder.const_int(1), name=f"{prefix}.next")
    builder.br(header)
    builder.add_incoming(iv, step, latch)

    if outer_value is not None:
        ctx.loop_values[loop.var.name] = outer_value
    else:
        ctx.loop_values.pop(loop.var.name, None)
    builder.position_at_end(exit_block)


def _lower_if(stmt: If, ctx: _LoweringContext) -> None:
    builder = ctx.builder
    function = ctx.function
    cond = _lower_expr(stmt.cond, ctx)
    then_block = function.add_block("if.then")
    else_block = function.add_block("if.else")
    merge_block = function.add_block("if.end")
    builder.cond_br(cond, then_block, else_block)

    builder.position_at_end(then_block)
    _lower_statements(stmt.then, ctx, parallel_for=None)
    builder.br(merge_block)

    builder.position_at_end(else_block)
    _lower_statements(stmt.orelse, ctx, parallel_for=None)
    builder.br(merge_block)

    builder.position_at_end(merge_block)


def _lower_assign(stmt, ctx: _LoweringContext) -> None:
    builder = ctx.builder
    value = _lower_expr(stmt.expr, ctx)
    target = stmt.target
    if isinstance(target, ArrayRef):
        address = _lower_address(target, ctx)
        if isinstance(stmt, Reduce):
            if target.is_indirect:
                builder.atomic_add(address, value)
                return
            old = builder.load(address, name="acc")
            value = _apply_reduce(builder, stmt.op, old, value)
        builder.store(value, address)
    else:  # Scalar target: reduction into a register modelled as load/store of
        # a one-element global (keeps SSA form simple and graph-visible)
        scalar_ptr = _scalar_slot(target, ctx)
        if isinstance(stmt, Reduce):
            old = builder.load(scalar_ptr, name="acc")
            value = _apply_reduce(builder, stmt.op, old, value)
        builder.store(value, scalar_ptr)


def _apply_reduce(builder: IRBuilder, op: str, old: Value, new: Value) -> Value:
    if op == "+":
        return builder.add(old, new, name="redadd")
    if op == "*":
        return builder.mul(old, new, name="redmul")
    if op == "min":
        return builder.intrinsic(Opcode.MIN, [old, new], name="redmin")
    if op == "max":
        return builder.intrinsic(Opcode.MAX, [old, new], name="redmax")
    raise ValueError(f"unknown reduction op {op!r}")


def _scalar_slot(scalar, ctx: _LoweringContext) -> Value:
    """Get (creating on demand) a module-global slot for a scalar accumulator."""
    name = f"scalar.{scalar.name}"
    module = ctx.function.module
    try:
        return module.get_global(name)
    except KeyError:
        return module.add_global(name, pointer_to(scalar.dtype), 1)


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------
def _lower_expr(expr: Expr, ctx: _LoweringContext) -> Value:
    builder = ctx.builder
    if isinstance(expr, ConstExpr):
        if is_float(expr.dtype):
            return builder.const_float(float(expr.value), expr.dtype)
        return builder.const_int(int(expr.value), expr.dtype)
    if isinstance(expr, ScalarRef):
        return builder.const_float(float(expr.scalar.value))
    if isinstance(expr, LoopVar):
        try:
            return ctx.loop_values[expr.name]
        except KeyError as exc:
            raise KeyError(
                f"loop variable {expr.name!r} used outside its loop"
            ) from exc
    if isinstance(expr, ArrayRef):
        address = _lower_address(expr, ctx)
        return builder.load(address, name=f"{expr.array.name}.val")
    if isinstance(expr, BinExpr):
        lhs = _lower_expr(expr.lhs, ctx)
        rhs = _lower_expr(expr.rhs, ctx)
        lhs, rhs = _coerce(builder, lhs, rhs)
        table = _BIN_FLOAT if is_float(lhs.dtype) else _BIN_INT
        if expr.op in ("min", "max"):
            opcode = Opcode.MIN if expr.op == "min" else Opcode.MAX
            return builder.intrinsic(opcode, [lhs, rhs])
        return builder.binary(table[expr.op], lhs, rhs)
    if isinstance(expr, CompareExpr):
        lhs = _lower_expr(expr.lhs, ctx)
        rhs = _lower_expr(expr.rhs, ctx)
        lhs, rhs = _coerce(builder, lhs, rhs)
        predicate = {"<": "lt", ">": "gt", "<=": "le", ">=": "ge",
                     "==": "eq", "!=": "ne"}[expr.op]
        if is_float(lhs.dtype):
            return builder.fcmp("o" + predicate, lhs, rhs)
        return builder.icmp("s" + predicate, lhs, rhs)
    if isinstance(expr, CallExpr):
        args = [_lower_expr(a, ctx) for a in expr.args]
        return builder.intrinsic(_CALL_OPCODE[expr.func], args,
                                 dtype=DataType.F64, name=expr.func)
    raise TypeError(f"cannot lower expression {expr!r}")


def _coerce(builder: IRBuilder, lhs: Value, rhs: Value):
    """Insert int→float conversions when mixing integer and float operands."""
    if is_float(lhs.dtype) and not is_float(rhs.dtype):
        rhs = builder.sitofp(rhs, lhs.dtype)
    elif is_float(rhs.dtype) and not is_float(lhs.dtype):
        lhs = builder.sitofp(lhs, rhs.dtype)
    return lhs, rhs


def _lower_address(ref: ArrayRef, ctx: _LoweringContext) -> Value:
    """Compute ``&A[i0, i1, ...]`` via linearised index + gep."""
    builder = ctx.builder
    base = ctx.array_values[ref.array.name]
    strides = _row_major_strides(ref.array, ctx.sizes)
    linear: Optional[Value] = None
    for idx, stride in zip(ref.indices, strides):
        term = _lower_index(idx, ctx)
        if stride != 1:
            term = builder.mul(term, builder.const_int(stride), name="idxmul")
        linear = term if linear is None else builder.add(linear, term, name="idxadd")
    if linear is None:
        linear = builder.const_int(0)
    return builder.gep(base, linear, name=f"{ref.array.name}.addr")


def _lower_index(idx, ctx: _LoweringContext) -> Value:
    builder = ctx.builder
    if isinstance(idx, IndirectIndex):
        inner = _lower_affine(idx.inner, ctx)
        base = ctx.array_values[idx.array.name]
        addr = builder.gep(base, inner, name=f"{idx.array.name}.addr")
        loaded = builder.load(addr, name=f"{idx.array.name}.idx")
        if loaded.dtype != DataType.I64:
            loaded = builder.sext(loaded, DataType.I64)
        return loaded
    return _lower_affine(idx, ctx)


def _lower_affine(affine: Affine, ctx: _LoweringContext) -> Value:
    builder = ctx.builder
    result: Optional[Value] = None
    for var, coeff in affine.coeffs.items():
        value = ctx.loop_values.get(var.name)
        if value is None:
            raise KeyError(f"loop variable {var.name!r} used outside its loop")
        if coeff != 1:
            value = builder.mul(value, builder.const_int(coeff), name="affmul")
        result = value if result is None else builder.add(result, value, name="affadd")
    if affine.const != 0 or result is None:
        const = builder.const_int(affine.const)
        result = const if result is None else builder.add(result, const, name="affadd")
    return result


def _row_major_strides(array: Array, sizes: Dict[str, int]) -> List[int]:
    extents = [resolve_extent(d, sizes) for d in array.dims]
    strides = []
    for i in range(len(extents)):
        stride = 1
        for e in extents[i + 1:]:
            stride *= e
        strides.append(stride)
    return strides
