"""Statement AST of the loop-nest DSL: loops, assignments, conditionals."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.frontend.expr import (
    ArrayRef,
    CompareExpr,
    Expr,
    Extent,
    LoopVar,
    Scalar,
    wrap,
)


class Statement:
    """Base class of DSL statements."""

    def children(self) -> Sequence["Statement"]:
        return ()

    def walk(self) -> Iterable["Statement"]:
        yield self
        for child in self.children():
            yield from child.walk()


class Assign(Statement):
    """``target = expr`` where target is an array reference or scalar."""

    def __init__(self, target: Union[ArrayRef, Scalar], expr: Union[Expr, float]):
        if not isinstance(target, (ArrayRef, Scalar)):
            raise TypeError("assignment target must be an ArrayRef or Scalar")
        self.target = target
        self.expr = wrap(expr)

    def __repr__(self) -> str:
        return f"Assign({self.target!r} = {self.expr!r})"


class Reduce(Statement):
    """``target op= expr`` — a reduction into a scalar or array cell.

    ``op`` is one of ``+ * min max``.  Parallel loops containing a
    :class:`Reduce` on a loop-invariant target are treated as OpenMP
    reductions (or atomic updates for irregular targets).
    """

    OPS = ("+", "*", "min", "max")

    def __init__(self, target: Union[ArrayRef, Scalar], expr: Union[Expr, float],
                 op: str = "+"):
        if op not in self.OPS:
            raise ValueError(f"unsupported reduction op {op!r}")
        self.target = target
        self.expr = wrap(expr)
        self.op = op

    def __repr__(self) -> str:
        return f"Reduce({self.target!r} {self.op}= {self.expr!r})"


class If(Statement):
    """A data-dependent conditional (drives branch-misprediction modelling)."""

    def __init__(self, cond: CompareExpr, then: Sequence[Statement],
                 orelse: Sequence[Statement] = (),
                 taken_probability: float = 0.5):
        self.cond = cond
        self.then: List[Statement] = list(then)
        self.orelse: List[Statement] = list(orelse)
        self.taken_probability = float(taken_probability)

    def children(self) -> Sequence[Statement]:
        return tuple(self.then) + tuple(self.orelse)

    def __repr__(self) -> str:
        return f"If({self.cond!r}, then={len(self.then)}, else={len(self.orelse)})"


class For(Statement):
    """A counted loop ``for var in range(extent)``.

    Parameters
    ----------
    parallel:
        Marks the loop as the OpenMP ``parallel for`` / OpenCL NDRange
        dimension.  Only one loop per kernel may be parallel (the outermost
        parallel loop is used, as in the paper's per-region tuning).
    imbalance:
        Relative per-iteration cost skew in [0, 1]; 0 means perfectly uniform
        iterations, larger values model triangular/irregular workloads
        (important for schedule/chunk tuning).
    """

    def __init__(self, var: LoopVar, extent: Extent, body: Sequence[Statement],
                 parallel: bool = False, imbalance: float = 0.0,
                 reduction: Optional[str] = None):
        self.var = var
        self.extent = extent
        self.body: List[Statement] = list(body)
        self.parallel = bool(parallel)
        self.imbalance = float(imbalance)
        self.reduction = reduction

    def children(self) -> Sequence[Statement]:
        return tuple(self.body)

    def inner_loops(self) -> List["For"]:
        return [s for s in self.body if isinstance(s, For)]

    def __repr__(self) -> str:
        tag = " parallel" if self.parallel else ""
        return f"For({self.var.name}, {self.extent!r},{tag} {len(self.body)} stmts)"


def loop_nest_depth(statements: Sequence[Statement]) -> int:
    """Maximum ``For`` nesting depth of a statement list."""
    depth = 0
    for stmt in statements:
        if isinstance(stmt, For):
            depth = max(depth, 1 + loop_nest_depth(stmt.body))
        elif isinstance(stmt, If):
            depth = max(depth, loop_nest_depth(stmt.then),
                        loop_nest_depth(stmt.orelse))
    return depth


def find_parallel_loop(statements: Sequence[Statement]) -> Optional[For]:
    """Return the outermost loop marked ``parallel`` (depth-first order)."""
    for stmt in statements:
        if isinstance(stmt, For):
            if stmt.parallel:
                return stmt
            nested = find_parallel_loop(stmt.body)
            if nested is not None:
                return nested
        elif isinstance(stmt, If):
            nested = find_parallel_loop(list(stmt.then) + list(stmt.orelse))
            if nested is not None:
                return nested
    return None
