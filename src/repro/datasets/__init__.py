"""Dataset builders for the two tuning tasks of the paper.

* :mod:`openmp` — the OpenMP runtime-parameter tuning dataset (§4.1): loops ×
  input sizes × configurations with execution times and PAPI counters.
* :mod:`devmap` — the OpenCL heterogeneous device-mapping dataset (§4.2):
  kernels × (transfer size, workgroup size) points labelled CPU or GPU,
  mirroring the Ben-Nun et al. dataset's schema.
"""

from repro.datasets.openmp import (
    OpenMPDatasetBuilder,
    OpenMPSample,
    OpenMPTuningDataset,
    default_input_targets,
)
from repro.datasets.devmap import DevMapDatasetBuilder, DevMapSample, DevMapDataset

__all__ = [
    "OpenMPSample",
    "OpenMPTuningDataset",
    "OpenMPDatasetBuilder",
    "default_input_targets",
    "DevMapSample",
    "DevMapDataset",
    "DevMapDatasetBuilder",
]
