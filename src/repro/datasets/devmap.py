"""OpenCL heterogeneous device-mapping dataset (§4.2.1).

Mirrors the Ben-Nun et al. dataset the paper uses: 256 unique OpenCL kernels
from seven benchmark suites, each executed with several (data size, workgroup
size) combinations to yield ~670 labelled CPU/GPU points per GPU device.  Our
kernels come from :func:`repro.kernels.opencl_kernels`, expanded with
per-kernel size variants, and the label is produced by the OpenCL device
simulator.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import StaticFeatureExtractor
from repro.frontend.analysis import analyze_spec
from repro.frontend.spec import KernelSpec
from repro.graphs import HeteroGraphData
from repro.simulator.microarch import CORE_I7_3820, GPUDevice
from repro.simulator.opencl import OpenCLSimulator

#: label values
CPU_LABEL = 0
GPU_LABEL = 1


@dataclasses.dataclass
class DevMapSample:
    """One labelled (kernel, transfer size, workgroup size) point."""

    kernel_uid: str
    suite: str
    scale: float
    transfer_bytes: float
    wgsize: int
    graph: HeteroGraphData
    vector: np.ndarray
    cpu_time: float
    gpu_time: float
    label: int

    @property
    def oracle_time(self) -> float:
        return min(self.cpu_time, self.gpu_time)

    def time_of(self, label: int) -> float:
        return self.cpu_time if label == CPU_LABEL else self.gpu_time


class DevMapDataset:
    """Collection of device-mapping samples for one GPU device."""

    def __init__(self, samples: Sequence[DevMapSample], gpu_name: str):
        self.samples: List[DevMapSample] = list(samples)
        self.gpu_name = gpu_name

    def __len__(self) -> int:
        return len(self.samples)

    def labels(self, samples: Optional[Sequence[DevMapSample]] = None) -> np.ndarray:
        samples = self.samples if samples is None else samples
        return np.array([s.label for s in samples], dtype=np.int64)

    def extra_features(self, samples: Optional[Sequence[DevMapSample]] = None
                       ) -> np.ndarray:
        """Transfer and workgroup size (log-scaled), the paper's §4.2 extras."""
        samples = self.samples if samples is None else samples
        return np.array([[np.log1p(s.transfer_bytes), np.log1p(s.wgsize)]
                         for s in samples], dtype=np.float64)

    def subset(self, indices: Sequence[int]) -> List[DevMapSample]:
        return [self.samples[i] for i in indices]

    def stratified_kfold(self, k: int = 10, seed: int = 0
                         ) -> List[Tuple[List[int], List[int]]]:
        """Stratified k-fold over the CPU/GPU label (as in the paper)."""
        rng = np.random.default_rng(seed)
        labels = self.labels()
        folds: List[List[int]] = [[] for _ in range(k)]
        for cls in np.unique(labels):
            idx = np.flatnonzero(labels == cls)
            rng.shuffle(idx)
            for pos, i in enumerate(idx):
                folds[pos % k].append(int(i))
        splits = []
        for f in range(k):
            val = sorted(folds[f])
            train = sorted(i for g in range(k) if g != f for i in folds[g])
            if val and train:
                splits.append((train, val))
        return splits

    def static_mapping_label(self) -> int:
        """The single best static mapping (majority oracle device)."""
        labels = self.labels()
        return int(np.bincount(labels).argmax())


class DevMapDatasetBuilder:
    """Generate labelled device-mapping points with the OpenCL simulator."""

    def __init__(self, gpu: GPUDevice, cpu: GPUDevice = CORE_I7_3820,
                 extractor: Optional[StaticFeatureExtractor] = None,
                 noise: float = 0.02, seed: int = 0):
        self.gpu = gpu
        self.cpu = cpu
        self.extractor = extractor or StaticFeatureExtractor()
        self.cpu_sim = OpenCLSimulator(cpu, noise=noise, seed=seed)
        self.gpu_sim = OpenCLSimulator(gpu, noise=noise, seed=seed + 1)
        self.seed = seed

    def build(self, specs: Sequence[KernelSpec],
              points_per_kernel: int = 3,
              wgsizes: Sequence[int] = (32, 64, 128, 256),
              size_targets: Sequence[float] = (1e6, 8e6, 64e6, 256e6, 512e6),
              ) -> DevMapDataset:
        """Build ~``len(specs) * points_per_kernel`` labelled points."""
        rng = np.random.default_rng(self.seed)
        samples: List[DevMapSample] = []
        for spec in specs:
            graph, vector = self.extractor.extract(spec)
            targets = rng.choice(size_targets, size=points_per_kernel,
                                 replace=points_per_kernel > len(size_targets))
            for target in targets:
                scale = spec.scale_for_bytes(float(target))
                summary = analyze_spec(spec, scale)
                wgsize = int(rng.choice(wgsizes))
                transfer_bytes = 0.7 * summary.working_set_bytes
                cpu_time = self.cpu_sim.run(summary, transfer_bytes,
                                            wgsize).time_seconds
                gpu_time = self.gpu_sim.run(summary, transfer_bytes,
                                            wgsize).time_seconds
                samples.append(DevMapSample(
                    kernel_uid=spec.uid,
                    suite=spec.suite,
                    scale=scale,
                    transfer_bytes=transfer_bytes,
                    wgsize=wgsize,
                    graph=graph,
                    vector=vector,
                    cpu_time=cpu_time,
                    gpu_time=gpu_time,
                    label=CPU_LABEL if cpu_time <= gpu_time else GPU_LABEL,
                ))
        return DevMapDataset(samples, gpu_name=self.gpu.name)
