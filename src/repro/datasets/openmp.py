"""OpenMP runtime-parameter tuning dataset (§4.1.1).

For every (loop, input size) pair the builder simulates every configuration
of the search space to obtain execution times (the label is the fastest
configuration — the paper's "oracle" obtained by brute force during dataset
creation), and profiles the loop once under the default configuration to
collect the performance counters used as dynamic features.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import StaticFeatureExtractor
from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.frontend.spec import KernelSpec
from repro.graphs import HeteroGraphData
from repro.profiling import SELECTED_COUNTERS
from repro.simulator.microarch import MicroArch
from repro.simulator.openmp import OpenMPSimulator


def default_input_targets(num: int = 30, min_bytes: float = 3.5e3,
                          max_bytes: float = 0.5e9) -> np.ndarray:
    """The paper's 30 input sizes from 3.5 KB to 0.5 GB (log-spaced)."""
    return np.geomspace(min_bytes, max_bytes, num)


@dataclasses.dataclass
class OpenMPSample:
    """One (loop, input size) data point."""

    kernel_uid: str
    suite: str
    scale: float
    target_bytes: float                     # requested input size (shared id)
    working_set_bytes: float
    graph: HeteroGraphData
    vector: np.ndarray
    counters: Dict[str, float]              # measured at the default config
    times: np.ndarray                       # seconds, aligned with the config list
    default_time: float
    label: int                              # index of the fastest configuration

    @property
    def oracle_time(self) -> float:
        return float(self.times[self.label])

    def speedup_of(self, config_index: int) -> float:
        """Speedup of a configuration relative to the default configuration."""
        return self.default_time / float(self.times[config_index])

    @property
    def oracle_speedup(self) -> float:
        return self.speedup_of(self.label)


class OpenMPTuningDataset:
    """A collection of :class:`OpenMPSample` plus the configuration list."""

    def __init__(self, samples: Sequence[OpenMPSample],
                 configs: Sequence[OMPConfig], arch: MicroArch,
                 counter_names: Sequence[str] = tuple(SELECTED_COUNTERS)):
        self.samples: List[OpenMPSample] = list(samples)
        self.configs: List[OMPConfig] = list(configs)
        self.arch = arch
        self.counter_names = list(counter_names)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def num_configs(self) -> int:
        return len(self.configs)

    @property
    def kernel_uids(self) -> List[str]:
        return sorted({s.kernel_uid for s in self.samples})

    @property
    def scales(self) -> List[float]:
        return sorted({s.scale for s in self.samples})

    @property
    def input_sizes(self) -> List[float]:
        """The distinct requested input sizes (shared across kernels)."""
        return sorted({s.target_bytes for s in self.samples})

    def counter_matrix(self, samples: Optional[Sequence[OpenMPSample]] = None
                       ) -> np.ndarray:
        samples = self.samples if samples is None else samples
        return np.array([[s.counters[name] for name in self.counter_names]
                         for s in samples], dtype=np.float64)

    def labels(self, samples: Optional[Sequence[OpenMPSample]] = None) -> np.ndarray:
        samples = self.samples if samples is None else samples
        return np.array([s.label for s in samples], dtype=np.int64)

    def subset(self, indices: Sequence[int]) -> List[OpenMPSample]:
        return [self.samples[i] for i in indices]

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def kfold_by_kernel(self, k: int = 5, seed: int = 0
                        ) -> List[Tuple[List[int], List[int]]]:
        """K folds where validation loops never appear in the training set."""
        rng = np.random.default_rng(seed)
        kernels = self.kernel_uids
        order = rng.permutation(len(kernels))
        folds = [[] for _ in range(k)]
        for pos, kernel_idx in enumerate(order):
            folds[pos % k].append(kernels[kernel_idx])
        splits = []
        for fold_kernels in folds:
            fold_set = set(fold_kernels)
            val = [i for i, s in enumerate(self.samples) if s.kernel_uid in fold_set]
            train = [i for i, s in enumerate(self.samples)
                     if s.kernel_uid not in fold_set]
            splits.append((train, val))
        return splits

    def leave_one_application_out(self) -> List[Tuple[str, List[int], List[int]]]:
        """One split per kernel/application (validation = all its samples)."""
        splits = []
        for kernel in self.kernel_uids:
            val = [i for i, s in enumerate(self.samples) if s.kernel_uid == kernel]
            train = [i for i, s in enumerate(self.samples)
                     if s.kernel_uid != kernel]
            splits.append((kernel, train, val))
        return splits

    def split_unseen_inputs(self, k: int = 5, holdout_fraction: float = 0.2,
                            seed: int = 1) -> List[Tuple[List[int], List[int]]]:
        """§4.1.3 "Varying Input Sizes": hold out 20% of the input sizes *and*
        the validation-fold loops; training sees neither."""
        rng = np.random.default_rng(seed)
        sizes = self.input_sizes
        n_holdout = max(1, int(round(len(sizes) * holdout_fraction)))
        holdout_sizes = set(rng.choice(sizes, size=n_holdout, replace=False))
        base_splits = self.kfold_by_kernel(k=k, seed=seed + 100)
        splits = []
        for train, val in base_splits:
            train2 = [i for i in train
                      if self.samples[i].target_bytes not in holdout_sizes]
            val2 = [i for i in val
                    if self.samples[i].target_bytes in holdout_sizes]
            if not val2:   # tiny datasets: fall back to unseen loops only
                val2 = val
            splits.append((train2, val2))
        return splits


class OpenMPDatasetBuilder:
    """Simulate the (loop × input × configuration) grid and assemble samples."""

    def __init__(self, arch: MicroArch, configs: Sequence[OMPConfig],
                 extractor: Optional[StaticFeatureExtractor] = None,
                 counter_names: Sequence[str] = tuple(SELECTED_COUNTERS),
                 noise: float = 0.015, seed: int = 0):
        self.arch = arch
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("need at least one configuration")
        self.extractor = extractor or StaticFeatureExtractor()
        self.counter_names = list(counter_names)
        self.simulator = OpenMPSimulator(arch, noise=noise, seed=seed)
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, specs: Sequence[KernelSpec],
              input_targets: Sequence[float],
              profile_config: Optional[OMPConfig] = None) -> OpenMPTuningDataset:
        """Build the dataset for ``specs`` at the given working-set targets."""
        profile_config = profile_config or default_omp_config(self.arch.cores)
        samples: List[OpenMPSample] = []
        default_index = self._default_config_index(profile_config)
        for spec in specs:
            graph, vector = self.extractor.extract(spec)
            for target_bytes in input_targets:
                scale = spec.scale_for_bytes(float(target_bytes))
                summary = analyze_spec(spec, scale)
                times = np.array([
                    self.simulator.run(summary, config).time_seconds
                    for config in self.configs
                ])
                profile = self.simulator.run(summary, profile_config)
                counters = {name: profile.counters[name]
                            for name in self.counter_names}
                default_time = (float(times[default_index])
                                if default_index is not None
                                else profile.time_seconds)
                samples.append(OpenMPSample(
                    kernel_uid=spec.uid,
                    suite=spec.suite,
                    scale=scale,
                    target_bytes=float(target_bytes),
                    working_set_bytes=float(spec.working_set_bytes(scale)),
                    graph=graph,
                    vector=vector,
                    counters=counters,
                    times=times,
                    default_time=default_time,
                    label=int(np.argmin(times)),
                ))
        return OpenMPTuningDataset(samples, self.configs, self.arch,
                                   self.counter_names)

    def _default_config_index(self, default: OMPConfig) -> Optional[int]:
        for i, config in enumerate(self.configs):
            if config == default:
                return i
        return None
