"""Construction of ProGraML-style flow multigraphs from the miniature IR.

Following Cummins et al. (ICML 2021), the graph has:

* one **instruction node** per IR instruction,
* one **variable node** per SSA value (instruction results, arguments,
  globals) and one **constant node** per constant operand,
* **control edges** between an instruction and its control-flow successors,
* **data edges** from defining instruction to its value node and from value /
  constant nodes to the instructions using them (with operand position),
* **call edges** from call sites to the callee's entry instruction and from
  the callee's returns back to the call site.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:                      # optional inspection dependency
    import networkx as nx

from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class NodeType(enum.IntEnum):
    """ProGraML node categories."""

    INSTRUCTION = 0
    VARIABLE = 1
    CONSTANT = 2


class EdgeFlow(str, enum.Enum):
    """ProGraML edge (relation) categories."""

    CONTROL = "control"
    DATA = "data"
    CALL = "call"


@dataclasses.dataclass
class ProGraMLNode:
    """One graph vertex."""

    node_id: int
    node_type: NodeType
    text: str                      # opcode for instructions, dtype otherwise
    function: Optional[str] = None
    block: Optional[str] = None


@dataclasses.dataclass
class ProGraMLEdge:
    """One directed, typed edge with an operand position."""

    src: int
    dst: int
    flow: EdgeFlow
    position: int = 0


class ProGraMLGraph:
    """A flow multigraph of one IR module."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: List[ProGraMLNode] = []
        self.edges: List[ProGraMLEdge] = []

    # ------------------------------------------------------------------
    def add_node(self, node_type: NodeType, text: str,
                 function: Optional[str] = None,
                 block: Optional[str] = None) -> int:
        node_id = len(self.nodes)
        self.nodes.append(ProGraMLNode(node_id, node_type, text, function, block))
        return node_id

    def add_edge(self, src: int, dst: int, flow: EdgeFlow, position: int = 0) -> None:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise IndexError(f"edge ({src}, {dst}) references unknown node")
        self.edges.append(ProGraMLEdge(src, dst, flow, position))

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edges_of_flow(self, flow: EdgeFlow) -> List[ProGraMLEdge]:
        return [e for e in self.edges if e.flow == flow]

    def nodes_of_type(self, node_type: NodeType) -> List[ProGraMLNode]:
        return [n for n in self.nodes if n.node_type == node_type]

    def to_networkx(self) -> "nx.MultiDiGraph":
        """Export to a networkx multigraph (used by tests and inspection).

        networkx is an optional inspection dependency — nothing on the
        library's train/serve paths needs it, so it is imported here
        rather than at module level (the wheel deliberately depends only
        on numpy + scipy).
        """
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.node_id, node_type=int(node.node_type),
                           text=node.text, function=node.function)
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, flow=edge.flow.value,
                           position=edge.position)
        return graph

    def __repr__(self) -> str:
        return (f"<ProGraMLGraph {self.name!r}: {self.num_nodes} nodes, "
                f"{self.num_edges} edges>")


def build_programl_graph(module: Module) -> ProGraMLGraph:
    """Build the ProGraML-style graph of ``module``."""
    graph = ProGraMLGraph(module.name)
    inst_node: Dict[Instruction, int] = {}
    value_node: Dict[Value, int] = {}

    # ------------------------------------------------------------------
    # nodes: instructions first (so instruction ids are dense and stable)
    # ------------------------------------------------------------------
    for function in module.functions:
        for block in function.blocks:
            for inst in block.instructions:
                nid = graph.add_node(NodeType.INSTRUCTION, inst.opcode.value,
                                     function.name, block.label)
                inst_node[inst] = nid

    def _value_node(value: Value, function_name: Optional[str]) -> int:
        if value in value_node:
            return value_node[value]
        if isinstance(value, Constant):
            nid = graph.add_node(NodeType.CONSTANT, value.dtype.value,
                                 function_name)
        else:
            nid = graph.add_node(NodeType.VARIABLE, value.dtype.value,
                                 function_name)
        value_node[value] = nid
        return nid

    # ------------------------------------------------------------------
    # control edges
    # ------------------------------------------------------------------
    for function in module.functions:
        for block in function.blocks:
            insts = block.instructions
            for a, b in zip(insts, insts[1:]):
                graph.add_edge(inst_node[a], inst_node[b], EdgeFlow.CONTROL)
            term = block.terminator
            if term is None:
                continue
            for pos, succ in enumerate(term.successors()):
                if succ.instructions:
                    graph.add_edge(inst_node[term],
                                   inst_node[succ.instructions[0]],
                                   EdgeFlow.CONTROL, position=pos)

    # ------------------------------------------------------------------
    # data edges (def -> value, value/const -> use)
    # ------------------------------------------------------------------
    for function in module.functions:
        for block in function.blocks:
            for inst in block.instructions:
                if inst.has_result:
                    vid = _value_node(inst, function.name)
                    graph.add_edge(inst_node[inst], vid, EdgeFlow.DATA)
                for pos, operand in enumerate(inst.operands):
                    if isinstance(operand, Instruction):
                        vid = _value_node(operand, function.name)
                    elif isinstance(operand, (Argument, GlobalVariable, Constant)):
                        vid = _value_node(operand, function.name)
                    else:  # pragma: no cover - defensive
                        continue
                    graph.add_edge(vid, inst_node[inst], EdgeFlow.DATA,
                                   position=pos)

    # ------------------------------------------------------------------
    # call edges
    # ------------------------------------------------------------------
    function_entry: Dict[str, Instruction] = {}
    function_rets: Dict[str, List[Instruction]] = {}
    for function in module.functions:
        if function.is_declaration:
            continue
        entry = function.entry_block
        if entry.instructions:
            function_entry[function.name] = entry.instructions[0]
        function_rets[function.name] = [
            inst for inst in function.instructions() if inst.opcode == Opcode.RET
        ]
    for function in module.functions:
        for block in function.blocks:
            for inst in block.instructions:
                if not inst.is_call:
                    continue
                callee = inst.metadata.get("callee")
                if callee in function_entry:
                    graph.add_edge(inst_node[inst],
                                   inst_node[function_entry[callee]],
                                   EdgeFlow.CALL)
                    for ret in function_rets.get(callee, []):
                        graph.add_edge(inst_node[ret], inst_node[inst],
                                       EdgeFlow.CALL, position=1)
    return graph
