"""Tensorised heterogeneous graph containers for the GNN stack.

The paper's heterogeneous GNN is an agglomeration of three homogeneous GNNs,
one per flow relation (control / data / call), sharing the node set.
:class:`HeteroGraphData` therefore stores one node-feature matrix plus one
edge-index array per relation; :func:`batch_graphs` builds the block-diagonal
batch used during training (with a ``graph_index`` vector for pooling).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.programl import EdgeFlow, ProGraMLGraph
from repro.graphs.vocab import GraphVocabulary
from repro.nn.autograd import SegmentLayout

#: Relation names, in canonical order.
RELATIONS = (EdgeFlow.CONTROL.value, EdgeFlow.DATA.value, EdgeFlow.CALL.value)


@dataclasses.dataclass
class HeteroGraphData:
    """One kernel's graph in tensor form."""

    name: str
    node_features: np.ndarray                 # [num_nodes, feature_dim]
    node_types: np.ndarray                    # [num_nodes] int
    edge_index: Dict[str, np.ndarray]         # relation -> [2, num_edges]

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    def num_edges(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return int(self.edge_index[relation].shape[1])
        return sum(int(e.shape[1]) for e in self.edge_index.values())

    def validate(self) -> None:
        """Raise ``ValueError`` if any edge references a missing node."""
        n = self.num_nodes
        for rel, edges in self.edge_index.items():
            if edges.size and (edges.min() < 0 or edges.max() >= n):
                raise ValueError(f"relation {rel!r} has out-of-range node ids")


def to_hetero_graph(graph: ProGraMLGraph,
                    vocab: Optional[GraphVocabulary] = None) -> HeteroGraphData:
    """Convert a :class:`ProGraMLGraph` into tensor form."""
    vocab = vocab or GraphVocabulary()
    features = vocab.node_features(graph)
    node_types = np.array([int(n.node_type) for n in graph.nodes], dtype=np.int64)
    edge_index: Dict[str, np.ndarray] = {}
    for relation in RELATIONS:
        edges = [e for e in graph.edges if e.flow.value == relation]
        if edges:
            arr = np.array([[e.src for e in edges], [e.dst for e in edges]],
                           dtype=np.int64)
        else:
            arr = np.zeros((2, 0), dtype=np.int64)
        edge_index[relation] = arr
    data = HeteroGraphData(graph.name, features, node_types, edge_index)
    data.validate()
    return data


class EdgeLayout:
    """CSR-style sorted layout of one relation's edges over a node set.

    Wraps a ``[2, num_edges]`` edge-index array together with lazily computed
    :class:`~repro.nn.autograd.SegmentLayout` sort orders for the source and
    destination columns, plus the degree normalisations the convolutions
    need.  Everything here is loop invariant for a fixed graph/batch, so it
    is computed at most once and reused across every message-passing step of
    every epoch.
    """

    __slots__ = ("src", "dst", "num_nodes", "_src_layout", "_dst_layout",
                 "_inv_in_deg", "_gcn_norm", "_by_dst", "_cast")

    def __init__(self, edge_index: np.ndarray, num_nodes: int):
        edge_index = np.asarray(edge_index, dtype=np.int64)
        self.src = edge_index[0]
        self.dst = edge_index[1]
        self.num_nodes = int(num_nodes)
        self._src_layout: Optional[SegmentLayout] = None
        self._dst_layout: Optional[SegmentLayout] = None
        self._inv_in_deg: Optional[np.ndarray] = None
        self._gcn_norm: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._by_dst: Optional[Tuple[np.ndarray, np.ndarray, SegmentLayout]] = None
        self._cast: Dict[str, np.ndarray] = {}

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def src_layout(self) -> SegmentLayout:
        """Sorted-segment layout over source ids (gather backward)."""
        if self._src_layout is None:
            self._src_layout = SegmentLayout(self.src, self.num_nodes)
        return self._src_layout

    @property
    def dst_layout(self) -> SegmentLayout:
        """Sorted-segment layout over destination ids (scatter forward)."""
        if self._dst_layout is None:
            self._dst_layout = SegmentLayout(self.dst, self.num_nodes)
        return self._dst_layout

    @property
    def inv_in_deg(self) -> np.ndarray:
        """``[num_nodes, 1]`` reciprocal in-degree (>= 1), float64."""
        if self._inv_in_deg is None:
            deg = np.maximum(self.dst_layout.counts, 1.0)
            self._inv_in_deg = (1.0 / deg)[:, None]
        return self._inv_in_deg

    @property
    def by_dst(self) -> Tuple[np.ndarray, np.ndarray, SegmentLayout]:
        """Edges re-sorted by destination: ``(src, dst, src_layout)``.

        With edges pre-sorted by destination, a scatter-style mean
        aggregation can ``np.add.reduceat`` straight over the gathered
        messages — no per-operation re-sort gather.  The returned
        ``src_layout`` is the sorted-``src`` segment layout the backward
        pass scatters through.
        """
        if self._by_dst is None:
            order = self.dst_layout.order
            src = self.src[order]
            dst = self.dst[order]
            self._by_dst = (src, dst, SegmentLayout(src, self.num_nodes))
        return self._by_dst

    def inv_in_deg_as(self, dtype) -> np.ndarray:
        """:attr:`inv_in_deg` cast to ``dtype``, memoised."""
        dtype = np.dtype(dtype)
        key = f"inv_in_deg:{dtype.str}"
        cached = self._cast.get(key)
        if cached is None:
            cached = self.inv_in_deg.astype(dtype, copy=False)
            self._cast[key] = cached
        return cached

    def gcn_norm_as(self, dtype) -> Tuple[np.ndarray, np.ndarray]:
        """:attr:`gcn_norm` cast to ``dtype``, memoised."""
        dtype = np.dtype(dtype)
        key = f"gcn_norm:{dtype.str}"
        cached = self._cast.get(key)
        if cached is None:
            edge_norm, self_norm = self.gcn_norm
            cached = (edge_norm.astype(dtype, copy=False),
                      self_norm.astype(dtype, copy=False))
            self._cast[key] = cached
        return cached

    @property
    def gcn_norm(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-edge symmetric norm ``[E, 1]`` and per-node self norm ``[n, 1]``."""
        if self._gcn_norm is None:
            deg_out = np.maximum(self.src_layout.counts, 1.0).astype(np.float64)
            deg_in = np.maximum(self.dst_layout.counts, 1.0).astype(np.float64)
            edge_norm = 1.0 / np.sqrt(deg_out[self.src] * deg_in[self.dst])
            self._gcn_norm = (edge_norm[:, None], (1.0 / deg_in)[:, None])
        return self._gcn_norm


@dataclasses.dataclass
class BatchedHeteroGraph:
    """Block-diagonal batch of several :class:`HeteroGraphData`."""

    node_features: np.ndarray                 # [total_nodes, feature_dim]
    node_types: np.ndarray                    # [total_nodes]
    edge_index: Dict[str, np.ndarray]         # relation -> [2, total_edges]
    graph_index: np.ndarray                   # [total_nodes] graph id per node
    num_graphs: int
    # lazily built, memoised per batch (see relation_layouts / pool_layout)
    _cache: Dict[str, object] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    def relation_layouts(self) -> Dict[str, EdgeLayout]:
        """Per-relation :class:`EdgeLayout`, built once per batch."""
        layouts = self._cache.get("relations")
        if layouts is None:
            layouts = {rel: EdgeLayout(edges, self.num_nodes)
                       for rel, edges in self.edge_index.items()}
            self._cache["relations"] = layouts
        return layouts

    def merged_layout(self) -> EdgeLayout:
        """All relations flattened into one :class:`EdgeLayout`."""
        layout = self._cache.get("merged")
        if layout is None:
            parts = [e for e in self.edge_index.values() if e.size]
            merged = (np.concatenate(parts, axis=1) if parts
                      else np.zeros((2, 0), dtype=np.int64))
            layout = EdgeLayout(merged, self.num_nodes)
            self._cache["merged"] = layout
        return layout

    def pool_layout(self) -> SegmentLayout:
        """Sorted-segment layout of ``graph_index`` for global pooling."""
        layout = self._cache.get("pool")
        if layout is None:
            layout = SegmentLayout(self.graph_index, self.num_graphs)
            self._cache["pool"] = layout
        return layout

    def features_as(self, dtype) -> np.ndarray:
        """Node features cast to ``dtype``, memoised per batch."""
        dtype = np.dtype(dtype)
        if self.node_features.dtype == dtype:
            return self.node_features
        key = ("features", dtype.str)
        cast = self._cache.get(key)
        if cast is None:
            cast = self.node_features.astype(dtype)
            self._cache[key] = cast
        return cast


def batch_graphs(graphs: Sequence[HeteroGraphData]) -> BatchedHeteroGraph:
    """Concatenate graphs with node-id offsets (PyG-style batching)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    feature_dim = graphs[0].feature_dim
    for g in graphs:
        if g.feature_dim != feature_dim:
            raise ValueError("all graphs must share the feature dimension")

    features: List[np.ndarray] = []
    node_types: List[np.ndarray] = []
    graph_index: List[np.ndarray] = []
    edges: Dict[str, List[np.ndarray]] = {rel: [] for rel in RELATIONS}
    offset = 0
    for gid, g in enumerate(graphs):
        features.append(g.node_features)
        node_types.append(g.node_types)
        graph_index.append(np.full(g.num_nodes, gid, dtype=np.int64))
        for rel in RELATIONS:
            e = g.edge_index.get(rel)
            if e is not None and e.size:
                edges[rel].append(e + offset)
        offset += g.num_nodes

    edge_index = {
        rel: (np.concatenate(parts, axis=1) if parts
              else np.zeros((2, 0), dtype=np.int64))
        for rel, parts in edges.items()
    }
    return BatchedHeteroGraph(
        node_features=np.concatenate(features, axis=0),
        node_types=np.concatenate(node_types, axis=0),
        edge_index=edge_index,
        graph_index=np.concatenate(graph_index, axis=0),
        num_graphs=len(graphs),
    )


class GraphBatchCache:
    """Memoised :func:`batch_graphs` over a fixed graph list.

    Training touches the same minibatches every epoch (the partition is fixed,
    only the visit order is shuffled), so the block-diagonal batch — and the
    edge/pooling layouts hanging off it — is built exactly once per distinct
    index tuple instead of once per epoch.

    Cache-staleness audit: everything stored here (and in the per-batch
    ``_cache`` of :class:`BatchedHeteroGraph` / :class:`EdgeLayout`) is a
    pure function of the graph list and the index tuple — edge sorts,
    degree norms, dtype casts.  None of it depends on mutable global
    configuration (``set_fast_segment_ops`` / ``set_default_dtype``), so
    toggling those flags never invalidates these caches.  Flag-dependent
    derived state lives only in compiled tape plans, which carry a
    config-epoch guard (see :mod:`repro.nn.tape`).  :meth:`clear` exists
    for memory reclamation between unrelated fits, not for correctness.
    """

    def __init__(self, graphs: Sequence[HeteroGraphData]):
        self.graphs = list(graphs)
        self._cache: Dict[Tuple[int, ...], BatchedHeteroGraph] = {}
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop all memoised batches (and reset the hit/miss counters)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def get(self, indices: Sequence[int]) -> BatchedHeteroGraph:
        key = tuple(int(i) for i in indices)
        batch = self._cache.get(key)
        if batch is None:
            self.misses += 1
            batch = batch_graphs([self.graphs[i] for i in key])
            self._cache[key] = batch
        else:
            self.hits += 1
        return batch

    def __len__(self) -> int:
        return len(self._cache)
