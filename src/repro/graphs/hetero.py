"""Tensorised heterogeneous graph containers for the GNN stack.

The paper's heterogeneous GNN is an agglomeration of three homogeneous GNNs,
one per flow relation (control / data / call), sharing the node set.
:class:`HeteroGraphData` therefore stores one node-feature matrix plus one
edge-index array per relation; :func:`batch_graphs` builds the block-diagonal
batch used during training (with a ``graph_index`` vector for pooling).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.programl import EdgeFlow, ProGraMLGraph
from repro.graphs.vocab import GraphVocabulary

#: Relation names, in canonical order.
RELATIONS = (EdgeFlow.CONTROL.value, EdgeFlow.DATA.value, EdgeFlow.CALL.value)


@dataclasses.dataclass
class HeteroGraphData:
    """One kernel's graph in tensor form."""

    name: str
    node_features: np.ndarray                 # [num_nodes, feature_dim]
    node_types: np.ndarray                    # [num_nodes] int
    edge_index: Dict[str, np.ndarray]         # relation -> [2, num_edges]

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    def num_edges(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return int(self.edge_index[relation].shape[1])
        return sum(int(e.shape[1]) for e in self.edge_index.values())

    def validate(self) -> None:
        """Raise ``ValueError`` if any edge references a missing node."""
        n = self.num_nodes
        for rel, edges in self.edge_index.items():
            if edges.size and (edges.min() < 0 or edges.max() >= n):
                raise ValueError(f"relation {rel!r} has out-of-range node ids")


def to_hetero_graph(graph: ProGraMLGraph,
                    vocab: Optional[GraphVocabulary] = None) -> HeteroGraphData:
    """Convert a :class:`ProGraMLGraph` into tensor form."""
    vocab = vocab or GraphVocabulary()
    features = vocab.node_features(graph)
    node_types = np.array([int(n.node_type) for n in graph.nodes], dtype=np.int64)
    edge_index: Dict[str, np.ndarray] = {}
    for relation in RELATIONS:
        edges = [e for e in graph.edges if e.flow.value == relation]
        if edges:
            arr = np.array([[e.src for e in edges], [e.dst for e in edges]],
                           dtype=np.int64)
        else:
            arr = np.zeros((2, 0), dtype=np.int64)
        edge_index[relation] = arr
    data = HeteroGraphData(graph.name, features, node_types, edge_index)
    data.validate()
    return data


@dataclasses.dataclass
class BatchedHeteroGraph:
    """Block-diagonal batch of several :class:`HeteroGraphData`."""

    node_features: np.ndarray                 # [total_nodes, feature_dim]
    node_types: np.ndarray                    # [total_nodes]
    edge_index: Dict[str, np.ndarray]         # relation -> [2, total_edges]
    graph_index: np.ndarray                   # [total_nodes] graph id per node
    num_graphs: int

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])


def batch_graphs(graphs: Sequence[HeteroGraphData]) -> BatchedHeteroGraph:
    """Concatenate graphs with node-id offsets (PyG-style batching)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    feature_dim = graphs[0].feature_dim
    for g in graphs:
        if g.feature_dim != feature_dim:
            raise ValueError("all graphs must share the feature dimension")

    features: List[np.ndarray] = []
    node_types: List[np.ndarray] = []
    graph_index: List[np.ndarray] = []
    edges: Dict[str, List[np.ndarray]] = {rel: [] for rel in RELATIONS}
    offset = 0
    for gid, g in enumerate(graphs):
        features.append(g.node_features)
        node_types.append(g.node_types)
        graph_index.append(np.full(g.num_nodes, gid, dtype=np.int64))
        for rel in RELATIONS:
            e = g.edge_index.get(rel)
            if e is not None and e.size:
                edges[rel].append(e + offset)
        offset += g.num_nodes

    edge_index = {
        rel: (np.concatenate(parts, axis=1) if parts
              else np.zeros((2, 0), dtype=np.int64))
        for rel, parts in edges.items()
    }
    return BatchedHeteroGraph(
        node_features=np.concatenate(features, axis=0),
        node_types=np.concatenate(node_types, axis=0),
        edge_index=edge_index,
        graph_index=np.concatenate(graph_index, axis=0),
        num_graphs=len(graphs),
    )
