"""ProGraML-style program graphs (modality #1 of the MGA tuner).

:func:`build_programl_graph` converts an IR module into a heterogeneous flow
multigraph with instruction / variable / constant nodes and control / data /
call edges, mirroring the representation of Cummins et al. (PROGRAML).
:func:`to_hetero_graph` converts it into the tensorised
:class:`HeteroGraphData` consumed by the heterogeneous GNN, and
:func:`batch_graphs` block-diagonally batches several graphs.
"""

from repro.graphs.programl import (
    EdgeFlow,
    NodeType,
    ProGraMLGraph,
    ProGraMLNode,
    build_programl_graph,
)
from repro.graphs.vocab import GraphVocabulary
from repro.graphs.hetero import (
    BatchedHeteroGraph,
    EdgeLayout,
    GraphBatchCache,
    HeteroGraphData,
    RELATIONS,
    batch_graphs,
    to_hetero_graph,
)

__all__ = [
    "NodeType",
    "EdgeFlow",
    "ProGraMLNode",
    "ProGraMLGraph",
    "build_programl_graph",
    "GraphVocabulary",
    "HeteroGraphData",
    "BatchedHeteroGraph",
    "EdgeLayout",
    "GraphBatchCache",
    "RELATIONS",
    "to_hetero_graph",
    "batch_graphs",
]
