"""Node-text vocabulary shared by the graph and embedding pipelines."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.graphs.programl import NodeType, ProGraMLGraph
from repro.ir.instructions import Opcode
from repro.ir.types import DataType


class GraphVocabulary:
    """Maps ProGraML node text to integer ids / one-hot features.

    The vocabulary is closed over the IR's opcodes and data types plus the
    three node-type markers; unseen text maps to a dedicated UNK id so that a
    model trained on one kernel set remains applicable to any other.
    """

    UNK = "<unk>"

    def __init__(self) -> None:
        tokens: List[str] = [self.UNK]
        tokens.extend(op.value for op in Opcode)
        tokens.extend(dt.value for dt in DataType)
        self._index: Dict[str, int] = {tok: i for i, tok in enumerate(tokens)}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._index)

    def token_id(self, text: str) -> int:
        return self._index.get(text, self._index[self.UNK])

    def encode_nodes(self, graph: ProGraMLGraph) -> np.ndarray:
        """Integer token id per node, shape ``[num_nodes]``."""
        return np.array([self.token_id(n.text) for n in graph.nodes],
                        dtype=np.int64)

    def node_features(self, graph: ProGraMLGraph,
                      include_node_type: bool = True) -> np.ndarray:
        """Initial node feature matrix: one-hot token id (+ node-type one-hot)."""
        ids = self.encode_nodes(graph)
        feats = np.zeros((graph.num_nodes, self.size), dtype=np.float64)
        feats[np.arange(graph.num_nodes), ids] = 1.0
        if include_node_type:
            type_feats = np.zeros((graph.num_nodes, len(NodeType)),
                                  dtype=np.float64)
            for i, node in enumerate(graph.nodes):
                type_feats[i, int(node.node_type)] = 1.0
            feats = np.concatenate([feats, type_feats], axis=1)
        return feats

    @property
    def feature_dim(self) -> int:
        return self.size + len(NodeType)

    def tokens(self) -> Iterable[str]:
        return self._index.keys()
