"""PAPI-like profiler over the OpenMP simulator."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.frontend.spec import KernelSpec
from repro.simulator.microarch import MicroArch
from repro.simulator.openmp import OpenMPSimulator

#: The ~20 preset counters collected during dataset construction (§4.1.1).
PAPI_PRESET_COUNTERS: List[str] = [
    "PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_LDM", "PAPI_BR_INS", "PAPI_BR_MSP",
    "PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_LD_INS",
    "PAPI_SR_INS", "PAPI_L1_ICM", "PAPI_L2_ICM", "PAPI_L3_TCM", "PAPI_TLB_DM",
    "PAPI_RES_STL", "PAPI_STL_ICY", "PAPI_MEM_WCY", "PAPI_CA_SHR",
    "PAPI_CA_CLN", "PAPI_PRF_DM",
]

#: The five counters the paper selects via Pearson correlation: L1 and L2
#: cache misses, L3 load misses, retired branch instructions, mispredicted
#: branches.
SELECTED_COUNTERS: List[str] = [
    "PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_LDM", "PAPI_BR_INS", "PAPI_BR_MSP",
]

#: How many counters can be measured in a single run on the paper's systems
#: (the selected five need two runs; see §4.1.4 "Observations and Analysis").
COUNTERS_PER_RUN = 4


@dataclasses.dataclass
class ProfileRecord:
    """Counters + execution time of one profiled run."""

    kernel: str
    scale: float
    config: OMPConfig
    time_seconds: float
    counters: Dict[str, float]
    runs_needed: int


class PAPIProfiler:
    """Profile kernels on a simulated micro-architecture."""

    def __init__(self, arch: MicroArch, noise: float = 0.015,
                 seed: Optional[int] = 0):
        self.arch = arch
        self.simulator = OpenMPSimulator(arch, noise=noise, seed=seed)

    # ------------------------------------------------------------------
    def profile(self, spec: KernelSpec, scale: float = 1.0,
                config: Optional[OMPConfig] = None,
                events: Optional[Sequence[str]] = None) -> ProfileRecord:
        """Profile one kernel at one input size under one configuration.

        ``events`` defaults to the full preset list; the number of simulated
        runs needed is ``ceil(len(events) / COUNTERS_PER_RUN)`` (mirroring the
        hardware restriction of counting only a few events per run) but a single
        simulator evaluation provides all values.
        """
        config = config or default_omp_config(self.arch.cores)
        events = list(events or PAPI_PRESET_COUNTERS)
        unknown = [e for e in events if e not in PAPI_PRESET_COUNTERS]
        if unknown:
            raise KeyError(f"unknown PAPI events: {unknown}")
        result = self.simulator.run(spec, config, scale=scale)
        counters = {e: result.counters[e] for e in events}
        runs_needed = int(np.ceil(len(events) / COUNTERS_PER_RUN))
        return ProfileRecord(kernel=spec.uid, scale=scale, config=config,
                             time_seconds=result.time_seconds,
                             counters=counters, runs_needed=runs_needed)

    def profile_many(self, spec: KernelSpec, scales: Sequence[float],
                     configs: Sequence[OMPConfig],
                     events: Optional[Sequence[str]] = None) -> List[ProfileRecord]:
        """Profile the cartesian product of input sizes and configurations."""
        records = []
        for scale in scales:
            for config in configs:
                records.append(self.profile(spec, scale=scale, config=config,
                                            events=events))
        return records
