"""PAPI-like profiler over the OpenMP simulator."""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.frontend.spec import KernelSpec
from repro.simulator.microarch import MicroArch
from repro.simulator.openmp import OpenMPSimulator

#: The ~20 preset counters collected during dataset construction (§4.1.1).
PAPI_PRESET_COUNTERS: List[str] = [
    "PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_LDM", "PAPI_BR_INS", "PAPI_BR_MSP",
    "PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_LD_INS",
    "PAPI_SR_INS", "PAPI_L1_ICM", "PAPI_L2_ICM", "PAPI_L3_TCM", "PAPI_TLB_DM",
    "PAPI_RES_STL", "PAPI_STL_ICY", "PAPI_MEM_WCY", "PAPI_CA_SHR",
    "PAPI_CA_CLN", "PAPI_PRF_DM",
]

#: The five counters the paper selects via Pearson correlation: L1 and L2
#: cache misses, L3 load misses, retired branch instructions, mispredicted
#: branches.
SELECTED_COUNTERS: List[str] = [
    "PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_LDM", "PAPI_BR_INS", "PAPI_BR_MSP",
]

#: How many counters can be measured in a single run on the paper's systems
#: (the selected five need two runs; see §4.1.4 "Observations and Analysis").
COUNTERS_PER_RUN = 4


@dataclasses.dataclass
class ProfileRecord:
    """Counters + execution time of one profiled run."""

    kernel: str
    scale: float
    config: OMPConfig
    time_seconds: float
    counters: Dict[str, float]
    runs_needed: int


#: Environment knobs for walltime emulation (see ``PAPIProfiler``):
#: ``REPRO_PROFILE_WALLTIME_SCALE`` / ``REPRO_PROFILE_WALLTIME_CAP``.
WALLTIME_SCALE_ENV = "REPRO_PROFILE_WALLTIME_SCALE"
WALLTIME_CAP_ENV = "REPRO_PROFILE_WALLTIME_CAP"


class PAPIProfiler:
    """Profile kernels on a simulated micro-architecture.

    ``walltime_scale`` optionally makes each :meth:`profile` call *occupy*
    wall-clock time proportional to the simulated execution (capped at
    ``walltime_cap`` seconds), exactly like
    :class:`~repro.tuners.campaign.SimObjectiveSpec` does for campaign
    evaluations: on real hardware a profiling run waits on the kernel's
    execution, and that wait — not the counter bookkeeping — is what a
    serving worker pool overlaps.  The scaling benchmarks set the
    ``REPRO_PROFILE_WALLTIME_SCALE`` / ``REPRO_PROFILE_WALLTIME_CAP``
    environment fallbacks so the emulation reaches worker processes without
    threading a knob through every serving layer; both default to off.
    """

    def __init__(self, arch: MicroArch, noise: float = 0.015,
                 seed: Optional[int] = 0,
                 walltime_scale: Optional[float] = None,
                 walltime_cap: Optional[float] = None):
        self.arch = arch
        self.simulator = OpenMPSimulator(arch, noise=noise, seed=seed)
        if walltime_scale is None:
            walltime_scale = float(os.environ.get(WALLTIME_SCALE_ENV, "0"))
        if walltime_cap is None:
            walltime_cap = float(os.environ.get(WALLTIME_CAP_ENV, "0.05"))
        self.walltime_scale = float(walltime_scale)
        self.walltime_cap = float(walltime_cap)

    # ------------------------------------------------------------------
    def profile(self, spec: KernelSpec, scale: float = 1.0,
                config: Optional[OMPConfig] = None,
                events: Optional[Sequence[str]] = None) -> ProfileRecord:
        """Profile one kernel at one input size under one configuration.

        ``events`` defaults to the full preset list; the number of simulated
        runs needed is ``ceil(len(events) / COUNTERS_PER_RUN)`` (mirroring the
        hardware restriction of counting only a few events per run) but a single
        simulator evaluation provides all values.
        """
        config = config or default_omp_config(self.arch.cores)
        events = list(events or PAPI_PRESET_COUNTERS)
        unknown = [e for e in events if e not in PAPI_PRESET_COUNTERS]
        if unknown:
            raise KeyError(f"unknown PAPI events: {unknown}")
        result = self.simulator.run(spec, config, scale=scale)
        counters = {e: result.counters[e] for e in events}
        runs_needed = int(np.ceil(len(events) / COUNTERS_PER_RUN))
        if self.walltime_scale > 0.0:
            # occupy (a scaled share of) the simulated execution time: the
            # profiling runs of a real deployment block on the kernel
            time.sleep(min(result.time_seconds * self.walltime_scale
                           * runs_needed, self.walltime_cap))
        return ProfileRecord(kernel=spec.uid, scale=scale, config=config,
                             time_seconds=result.time_seconds,
                             counters=counters, runs_needed=runs_needed)

    def profile_many(self, spec: KernelSpec, scales: Sequence[float],
                     configs: Sequence[OMPConfig],
                     events: Optional[Sequence[str]] = None) -> List[ProfileRecord]:
        """Profile the cartesian product of input sizes and configurations."""
        records = []
        for scale in scales:
            for config in configs:
                records.append(self.profile(spec, scale=scale, config=config,
                                            events=events))
        return records
