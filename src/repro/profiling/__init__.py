"""PAPI-style profiling layer on top of the performance simulator.

Mirrors the role PAPI plays in the paper (§4.1.1): instrumented loops are
profiled per input size to collect ~20 preset counters; Pearson correlation
against execution time selects the five most informative counters; later runs
collect only those five (two runs per configuration, as the selected events
cannot all be measured in one run on the paper's systems).
"""

from repro.profiling.papi import (
    PAPI_PRESET_COUNTERS,
    SELECTED_COUNTERS,
    PAPIProfiler,
    ProfileRecord,
)
from repro.profiling.selection import pearson_correlation, select_counters
from repro.profiling.portability import rescale_counters

__all__ = [
    "PAPI_PRESET_COUNTERS",
    "SELECTED_COUNTERS",
    "PAPIProfiler",
    "ProfileRecord",
    "pearson_correlation",
    "select_counters",
    "rescale_counters",
]
