"""µ-architecture portability: counter rescaling (§4.1.5).

When a model trained on Comet Lake data is applied to Broadwell / Sandy
Bridge, the paper rescales the cache-miss counters by the ratio of the target
system's cache sizes to the training system's, and divides the
branch-misprediction counter by the reference cycles, then normalises to
[0, 1].  This module implements that transformation.
"""

from __future__ import annotations

from typing import Dict

from repro.simulator.microarch import MicroArch


def rescale_counters(counters: Dict[str, float], source: MicroArch,
                     target: MicroArch) -> Dict[str, float]:
    """Rescale counters measured on ``target`` into ``source``'s feature space.

    Cache-miss counters are multiplied by ``cache_size_target /
    cache_size_source`` (per level, as in the paper's formula for Sandy
    Bridge L1 misses); branch mispredictions are expressed per reference
    cycle; everything else passes through unchanged.
    """
    out = dict(counters)
    ratio_l1 = target.l1_bytes / source.l1_bytes
    ratio_l2 = target.l2_bytes / source.l2_bytes
    ratio_l3 = target.l3_bytes / source.l3_bytes
    if "PAPI_L1_DCM" in out:
        out["PAPI_L1_DCM"] = out["PAPI_L1_DCM"] * ratio_l1
    if "PAPI_L2_DCM" in out:
        out["PAPI_L2_DCM"] = out["PAPI_L2_DCM"] * ratio_l2
    if "PAPI_L3_LDM" in out:
        out["PAPI_L3_LDM"] = out["PAPI_L3_LDM"] * ratio_l3
    if "PAPI_L3_TCM" in out:
        out["PAPI_L3_TCM"] = out["PAPI_L3_TCM"] * ratio_l3
    if "PAPI_BR_MSP" in out and "PAPI_TOT_CYC" in counters:
        cycles = max(counters["PAPI_TOT_CYC"], 1.0)
        out["PAPI_BR_MSP"] = out["PAPI_BR_MSP"] / cycles * 1e6
    return out
