"""Counter selection via Pearson correlation against execution time (§4.1.1).

Collecting all ~20 preset counters for every loop/input/configuration leads
to a feature explosion; the paper keeps the five counters whose absolute
Pearson correlation with execution time is highest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.profiling.papi import PAPI_PRESET_COUNTERS, ProfileRecord


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient, 0.0 for degenerate (constant) inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("inputs must be equal-length with at least 2 samples")
    xs = x - x.mean()
    ys = y - y.mean()
    denom = np.sqrt(np.sum(xs ** 2) * np.sum(ys ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.sum(xs * ys) / denom)


def select_counters(records: Sequence[ProfileRecord], k: int = 5,
                    candidates: Sequence[str] = PAPI_PRESET_COUNTERS) -> List[str]:
    """Return the ``k`` counters most correlated (|r|) with execution time."""
    if not records:
        raise ValueError("no profile records supplied")
    times = np.array([r.time_seconds for r in records])
    scores: Dict[str, float] = {}
    for name in candidates:
        values = np.array([r.counters.get(name, 0.0) for r in records])
        scores[name] = abs(pearson_correlation(values, times))
    ranked = sorted(scores, key=lambda n: scores[n], reverse=True)
    return ranked[:k]
