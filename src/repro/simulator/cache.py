"""Cache-hierarchy behaviour of a workload on a CPU micro-architecture.

The model is a capacity/stride model rather than a trace-driven simulator:
per level we estimate the fraction of memory accesses that miss based on

* the per-thread working set relative to the (per-core or shared) capacity,
* the access-pattern mix of the kernel (unit-stride / strided / random /
  loop-invariant), which determines how much spatial locality a cache line
  provides,
* the scheduling chunk size (very small dynamic chunks destroy spatial
  locality and cause false sharing on store-heavy kernels).

This is exactly the information the paper's five selected PAPI counters carry
(L1/L2 cache misses, L3 load misses, branches, mispredicted branches), so the
generated counters preserve the statistical relationship to the optimal
configuration that the MGA model exploits.
"""

from __future__ import annotations

import dataclasses
import math

from repro.frontend.analysis import WorkloadSummary
from repro.simulator.microarch import MicroArch


@dataclasses.dataclass
class CacheTraffic:
    """Estimated absolute miss counts and resulting memory traffic."""

    accesses: float
    l1_misses: float
    l2_misses: float
    l3_misses: float
    dram_bytes: float
    latency_bound_fraction: float   # fraction of L3 misses that are dependent
                                    # (pointer-chasing-like) and cannot overlap


def _capacity_factor(working_set: float, capacity: float) -> float:
    """Smooth 0→1 ramp of the miss probability as the working set exceeds the
    cache capacity (logistic in log-space, ~0 when ws << cap, ~1 when >> )."""
    if working_set <= 0:
        return 0.0
    ratio = working_set / max(capacity, 1.0)
    return 1.0 / (1.0 + math.exp(-2.2 * math.log(ratio + 1e-12)))


def estimate_cache_traffic(summary: WorkloadSummary, arch: MicroArch,
                           threads: int, chunk_iterations: float) -> CacheTraffic:
    """Estimate per-level miss counts for one execution of the kernel."""
    accesses = summary.loads + summary.stores
    if accesses <= 0:
        return CacheTraffic(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    elem_bytes = summary.mem_bytes / accesses
    line_ratio = min(1.0, elem_bytes / arch.line_bytes)

    # spatial-locality miss rate per access when streaming through data that
    # does not fit in the cache
    stream_miss = (summary.unit_stride_frac * line_ratio
                   + summary.strided_frac * 0.75
                   + summary.random_frac * 0.95
                   + summary.invariant_frac * 0.02)

    # very small chunks reduce spatial locality / cause false sharing:
    # a chunk should cover at least a few cache lines of each streamed array
    iters_per_line = max(1.0, arch.line_bytes / max(1.0, summary.bytes_per_parallel_iter))
    chunk_locality_penalty = 1.0
    if chunk_iterations < iters_per_line:
        chunk_locality_penalty = 1.0 + 0.8 * (iters_per_line / max(chunk_iterations, 0.5) - 1.0)
        chunk_locality_penalty = min(chunk_locality_penalty, 3.0)

    threads = max(1, threads)
    ws_total = summary.working_set_bytes
    ws_per_thread = ws_total / threads

    # L1 (per core, private)
    l1_factor = _capacity_factor(ws_per_thread, arch.l1_bytes)
    l1_miss_rate = min(1.0, stream_miss * (0.15 + 0.85 * l1_factor)
                       * chunk_locality_penalty)
    l1_misses = accesses * l1_miss_rate

    # L2 (per core, private)
    l2_factor = _capacity_factor(ws_per_thread, arch.l2_bytes)
    l2_miss_rate = min(1.0, 0.08 + 0.92 * l2_factor)
    l2_misses = l1_misses * l2_miss_rate

    # L3 (shared among all active threads)
    l3_factor = _capacity_factor(ws_total, arch.l3_bytes)
    l3_miss_rate = min(1.0, 0.05 + 0.95 * l3_factor)
    l3_misses = l2_misses * l3_miss_rate

    dram_bytes = l3_misses * arch.line_bytes
    latency_bound_fraction = min(1.0, summary.random_frac * 0.85
                                 + summary.strided_frac * 0.15)
    return CacheTraffic(
        accesses=accesses,
        l1_misses=l1_misses,
        l2_misses=l2_misses,
        l3_misses=l3_misses,
        dram_bytes=dram_bytes,
        latency_bound_fraction=latency_bound_fraction,
    )
