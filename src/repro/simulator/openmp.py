"""OpenMP execution model: time and counters for (kernel, input, config).

``simulate_openmp`` composes the workload summary of a kernel with a CPU
micro-architecture model and an OpenMP runtime configuration (threads /
schedule / chunk) into an execution time plus a PAPI-style counter set.  The
model captures the mechanisms that make OpenMP tuning non-trivial on real
hardware and that the paper's MGA tuner exploits:

* Amdahl-style serial fraction and parallel-region fork/barrier overheads,
* roofline behaviour (compute throughput vs. memory bandwidth saturation),
* cache-capacity and access-pattern driven miss rates (per level),
* shared-LLC and memory-controller contention at high thread counts,
* load imbalance vs. scheduling policy and chunk size,
* dynamic-scheduling dispatch overhead and locality loss for tiny chunks,
* atomic/reduction contention,
* SMT efficiency (Skylake 10c/20t) and per-µarch clock/cache differences,
* kernels whose parallel version is intrinsically slower (``serial_advantage``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Union

import numpy as np

from repro.frontend.analysis import WorkloadSummary, analyze_spec
from repro.frontend.openmp import OMPConfig, OMPSchedule
from repro.frontend.spec import KernelSpec
from repro.simulator.cache import CacheTraffic, estimate_cache_traffic
from repro.simulator.microarch import (
    MicroArch,
    microarch_from_config,
    microarch_to_config,
)

#: Baseline fraction of branches mispredicted even for perfectly predictable
#: loop back-edges.
BASE_MISPREDICT_RATE = 0.004

#: Cost of one contended atomic RMW operation (ns).
ATOMIC_COST_NS = 18.0


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one simulated OpenMP execution."""

    time_seconds: float
    counters: Dict[str, float]
    breakdown: Dict[str, float]
    config: OMPConfig
    arch: str

    def counter(self, name: str) -> float:
        return self.counters[name]


class OpenMPSimulator:
    """Reusable simulator bound to one micro-architecture."""

    def __init__(self, arch: MicroArch, noise: float = 0.015,
                 seed: Optional[int] = 1234):
        self.arch = arch
        self.noise = float(noise)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def get_config(self) -> Dict:
        """JSON-serialisable parameters rebuilding an equivalent simulator.

        The internal RNG position is *not* captured; a reconstructed
        simulator restarts its noise stream from ``seed`` (callers that need
        order-independent determinism pass an explicit ``rng`` to
        :meth:`run`, as the campaign workers do).
        """
        return {"arch": microarch_to_config(self.arch), "noise": self.noise,
                "seed": self.seed}

    @classmethod
    def from_config(cls, config: Dict) -> "OpenMPSimulator":
        return cls(microarch_from_config(config["arch"]),
                   noise=float(config["noise"]), seed=config["seed"])

    # ------------------------------------------------------------------
    def run(self, workload: Union[KernelSpec, WorkloadSummary],
            config: OMPConfig, scale: float = 1.0,
            rng: Optional[np.random.Generator] = None) -> ExecutionResult:
        """Simulate one execution and return time + counters."""
        summary = (workload if isinstance(workload, WorkloadSummary)
                   else analyze_spec(workload, scale))
        rng = rng or self._rng
        arch = self.arch

        threads = max(1, min(config.num_threads, arch.max_threads))
        eff_threads = max(1, min(threads, summary.parallel_trip))
        trip = max(1, summary.parallel_trip)
        chunk = float(config.effective_chunk(trip))

        traffic = estimate_cache_traffic(summary, arch, eff_threads, chunk)

        par_fraction = 1.0 - summary.serial_fraction
        compute_s = self._compute_time(summary, eff_threads) * par_fraction
        memory_s = self._memory_time(summary, traffic, eff_threads) * par_fraction
        branch_s = self._branch_time(summary, eff_threads) * par_fraction

        base_parallel = compute_s + memory_s + branch_s

        slack, sched_overhead_s = self._schedule_effects(
            summary, config, eff_threads, trip, chunk, base_parallel)

        sync_s = self._sync_overheads(summary, eff_threads, threads)

        parallel_s = (base_parallel * (1.0 + slack) + sched_overhead_s + sync_s)
        parallel_s *= summary.serial_advantage

        serial_s = self._serial_time(summary)

        total = serial_s + parallel_s
        if self.noise > 0:
            total *= float(np.exp(rng.normal(0.0, self.noise)))

        counters = self._counters(summary, traffic, total, eff_threads, rng)
        breakdown = {
            "serial": serial_s,
            "compute": compute_s,
            "memory": memory_s,
            "branch": branch_s,
            "schedule_overhead": sched_overhead_s,
            "sync_overhead": sync_s,
            "imbalance_slack": base_parallel * slack,
        }
        return ExecutionResult(time_seconds=float(total), counters=counters,
                               breakdown=breakdown, config=config,
                               arch=arch.name)

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def _compute_time(self, summary: WorkloadSummary, threads: int) -> float:
        arch = self.arch
        flop_s = summary.flops / (arch.peak_gflops(threads) * 1e9)
        # scalar integer / address arithmetic: ~3 ops per cycle per core
        int_throughput = arch.peak_gflops(threads) / arch.flops_per_cycle * 3.0
        int_s = summary.int_ops / (int_throughput * 1e9)
        return flop_s + int_s

    def _memory_time(self, summary: WorkloadSummary, traffic: CacheTraffic,
                     threads: int) -> float:
        arch = self.arch
        # DRAM bandwidth component (shared resource, saturates with threads,
        # degrades slightly past saturation due to controller contention)
        bw = arch.effective_mem_bw(threads)
        contention = 1.0
        if summary.working_set_bytes > 0.5 * arch.l3_bytes and threads > 2:
            contention += 0.07 * (threads - 2)
        bandwidth_s = traffic.dram_bytes * contention / (bw * 1e9)

        # cache service time: L2 hits for L1 misses, L3 hits for L2 misses.
        # Several misses overlap (hardware MLP); each thread has its own ports.
        mlp = 6.0
        l2_s = (traffic.l1_misses - traffic.l2_misses) * arch.l2_latency_ns
        l3_s = (traffic.l2_misses - traffic.l3_misses) * arch.l3_latency_ns
        cache_s = (l2_s + l3_s) / (mlp * threads) * 1e-9

        # latency-bound DRAM component (dependent / irregular accesses)
        lat_mlp = 2.0
        latency_s = (traffic.l3_misses * traffic.latency_bound_fraction
                     * arch.mem_latency_ns / (lat_mlp * threads)) * 1e-9
        return bandwidth_s + cache_s + latency_s

    def _branch_time(self, summary: WorkloadSummary, threads: int) -> float:
        mispredicts = (summary.expected_mispredicts
                       + summary.branches * BASE_MISPREDICT_RATE)
        return mispredicts * self.arch.branch_penalty_ns / threads * 1e-9

    def _schedule_effects(self, summary: WorkloadSummary, config: OMPConfig,
                          threads: int, trip: int, chunk: float,
                          base_parallel: float):
        """Return (imbalance slack fraction, scheduling overhead seconds)."""
        arch = self.arch
        imbalance = summary.imbalance
        if threads <= 1:
            # single-thread teams take the OpenMP runtime's serialised fast
            # path: no worker wake-up, no barrier rendezvous
            return 0.0, 0.4 * arch.fork_overhead_us * 1e-6

        chunks_total = max(1.0, trip / chunk)
        chunk_fraction = min(1.0, chunk * threads / trip)

        if config.schedule == OMPSchedule.STATIC:
            if config.chunk_size is None:
                # one contiguous block per thread: full exposure to imbalance
                slack = imbalance * (1.0 - 1.0 / threads)
            else:
                # round-robin chunks average out monotone imbalance
                slack = imbalance * (1.0 - 1.0 / threads) * chunk_fraction
            dispatch_s = 0.0
        elif config.schedule == OMPSchedule.DYNAMIC:
            slack = imbalance * chunk_fraction * 0.5
            per_chunk = arch.sched_overhead_us * (1.0 + 0.04 * threads)
            dispatch_s = chunks_total / threads * per_chunk * 1e-6
        else:  # GUIDED
            guided_chunks = threads * (math.log2(max(2.0, chunks_total / threads))
                                       + 1.0)
            slack = imbalance * 0.25 * chunk_fraction + imbalance * 0.05
            per_chunk = arch.sched_overhead_us * (1.0 + 0.04 * threads)
            dispatch_s = guided_chunks / threads * per_chunk * 1e-6

        # waking up and joining worker threads costs more the wider the team is
        fork_s = arch.fork_overhead_us * (1.0 + 0.22 * threads) * 1e-6
        return slack, dispatch_s + fork_s

    def _sync_overheads(self, summary: WorkloadSummary, eff_threads: int,
                        requested_threads: int) -> float:
        total = 0.0
        if summary.has_reduction:
            total += math.log2(max(2, eff_threads)) * 0.6e-6
        if summary.has_atomic:
            atomic_ops = summary.stores
            contention = 1.0 + 0.12 * (eff_threads - 1)
            total += atomic_ops * ATOMIC_COST_NS * contention / eff_threads * 1e-9
        # barrier cost grows with the number of threads that must rendezvous
        total += 0.2e-6 * requested_threads
        return total

    def _serial_time(self, summary: WorkloadSummary) -> float:
        if summary.serial_fraction <= 0.0:
            return 0.0
        single = OMPConfig(num_threads=1)
        traffic = estimate_cache_traffic(summary, self.arch, 1,
                                         float(max(1, summary.parallel_trip)))
        compute = self._compute_time(summary, 1)
        memory = self._memory_time(summary, traffic, 1)
        branch = self._branch_time(summary, 1)
        del single
        return (compute + memory + branch) * summary.serial_fraction

    # ------------------------------------------------------------------
    def _counters(self, summary: WorkloadSummary, traffic: CacheTraffic,
                  time_s: float, threads: int,
                  rng: np.random.Generator) -> Dict[str, float]:
        arch = self.arch
        mispredicts = (summary.expected_mispredicts
                       + summary.branches * BASE_MISPREDICT_RATE)
        total_ins = (summary.flops + summary.int_ops + summary.loads
                     + summary.stores + summary.branches)
        cycles = time_s * arch.freq_ghz * 1e9 * min(threads, arch.cores)
        page_bytes = 4096.0
        counters = {
            # --- the five counters selected in §4.1.1 ---
            "PAPI_L1_DCM": traffic.l1_misses,
            "PAPI_L2_DCM": traffic.l2_misses,
            "PAPI_L3_LDM": traffic.l3_misses
            * (summary.loads / max(1.0, summary.loads + summary.stores)),
            "PAPI_BR_INS": summary.branches,
            "PAPI_BR_MSP": mispredicts,
            # --- the rest of the ~20 preset counters collected initially ---
            "PAPI_TOT_INS": total_ins,
            "PAPI_TOT_CYC": cycles,
            "PAPI_FP_OPS": summary.flops,
            "PAPI_LD_INS": summary.loads,
            "PAPI_SR_INS": summary.stores,
            "PAPI_L1_ICM": 1e3 + summary.branches * 1e-4,
            "PAPI_L2_ICM": 5e2 + summary.branches * 5e-5,
            "PAPI_L3_TCM": traffic.l3_misses,
            "PAPI_TLB_DM": summary.working_set_bytes / page_bytes
            + traffic.accesses * summary.random_frac * 0.02,
            "PAPI_RES_STL": cycles * min(0.9, 0.2 + 0.6 * summary.random_frac
                                         + 0.2 * summary.strided_frac),
            "PAPI_STL_ICY": cycles * 0.05,
            "PAPI_MEM_WCY": traffic.dram_bytes / max(arch.mem_bw_gbs, 1.0),
            "PAPI_CA_SHR": summary.stores * (1.0 if summary.has_atomic else 0.01),
            "PAPI_CA_CLN": summary.stores * 0.1,
            "PAPI_PRF_DM": traffic.accesses * summary.strided_frac * 0.3,
        }
        if self.noise > 0:
            jitter = np.exp(rng.normal(0.0, self.noise * 2.0, size=len(counters)))
            counters = {k: float(v * j)
                        for (k, v), j in zip(counters.items(), jitter)}
        return counters


def simulate_openmp(workload: Union[KernelSpec, WorkloadSummary],
                    config: OMPConfig, arch: MicroArch, scale: float = 1.0,
                    noise: float = 0.015,
                    seed: Optional[int] = None) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`OpenMPSimulator`."""
    sim = OpenMPSimulator(arch, noise=noise, seed=seed)
    return sim.run(workload, config, scale=scale)
