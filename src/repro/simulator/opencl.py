"""OpenCL device execution model (heterogeneous device mapping, §4.2).

``simulate_opencl`` estimates the wall time of launching one OpenCL kernel on
either the CPU or a GPU device, including the effects that decide the mapping
in the Ben-Nun et al. dataset the paper uses:

* host→device transfer time and kernel-launch overhead (dominant for small
  inputs → CPU wins),
* compute / memory-bandwidth rooflines (GPU wins for large regular kernels),
* irregular-access and branch-divergence penalties (GPU-unfriendly kernels),
* workgroup-size occupancy effects,
* per-call overhead of kernels that make many dynamic calls from inside the
  parallel loop (the paper's ``makea`` corner case: GPU for small inputs,
  CPU for large ones).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Union

import numpy as np

from repro.frontend.analysis import WorkloadSummary, analyze_spec
from repro.frontend.spec import KernelSpec
from repro.simulator.microarch import GPUDevice


class DeviceKind(str, enum.Enum):
    """Target of the heterogeneous mapping decision."""

    CPU = "cpu"
    GPU = "gpu"


@dataclasses.dataclass
class OpenCLExecution:
    """Outcome of one simulated OpenCL kernel launch."""

    time_seconds: float
    breakdown: Dict[str, float]
    device: str


class OpenCLSimulator:
    """Simulator bound to one OpenCL device."""

    def __init__(self, device: GPUDevice, noise: float = 0.02,
                 seed: Optional[int] = 77):
        self.device = device
        self.noise = float(noise)
        self._rng = np.random.default_rng(seed)

    def run(self, workload: Union[KernelSpec, WorkloadSummary],
            transfer_bytes: float, wgsize: int, scale: float = 1.0,
            rng: Optional[np.random.Generator] = None) -> OpenCLExecution:
        summary = (workload if isinstance(workload, WorkloadSummary)
                   else analyze_spec(workload, scale))
        rng = rng or self._rng
        dev = self.device

        # ---------------- transfer + launch ----------------------------
        if dev.kind == "gpu":
            # inputs go host->device, (smaller) results come back
            transfer_s = 1.2 * transfer_bytes / (dev.pcie_bw_gbs * 1e9)
            launch_s = dev.launch_overhead_us * 1e-6
        else:
            transfer_s = 0.0
            launch_s = dev.launch_overhead_us * 1e-6

        # ---------------- occupancy ------------------------------------
        occupancy = 1.0
        if dev.kind == "gpu":
            # small workgroups and too little total parallel work
            # under-utilise the GPU
            wg_ratio = min(1.0, wgsize / dev.preferred_wgsize)
            occupancy *= 0.35 + 0.65 * wg_ratio
            min_work = 2.0e6
            occupancy *= min(1.0, summary.total_iterations / min_work) ** 0.5
            occupancy = max(occupancy, 0.02)

        # ---------------- compute / memory rooflines --------------------
        compute_s = summary.flops / (dev.peak_gflops * 1e9 * occupancy)
        int_s = summary.int_ops / (dev.peak_gflops * 2.0 * 1e9 * occupancy)

        # DRAM traffic: regular kernels mostly hit the on-chip caches, so
        # traffic is dominated by compulsory (working-set) misses; irregular
        # kernels pay closer to one transaction per access.  GPUs have less
        # cache per work-item, hence the larger leak coefficient.
        leak = 0.20 if dev.kind == "cpu" else 0.10
        traffic_bytes = (summary.working_set_bytes
                         + summary.mem_bytes * (leak + (1.0 - leak)
                                                * summary.random_frac))
        random_penalty = 1.0 + (dev.random_access_penalty - 1.0) * (
            summary.random_frac + 0.5 * summary.strided_frac)
        memory_s = traffic_bytes * random_penalty / (dev.mem_bw_gbs * 1e9
                                                     * occupancy)

        # ---------------- divergence / serialisation --------------------
        branchiness = min(1.0, summary.branches
                          / max(1.0, summary.total_iterations))
        divergence = 1.0 + (dev.divergence_penalty - 1.0) * branchiness
        # reductions / atomics serialise partially on wide devices
        if summary.has_atomic and dev.kind == "gpu":
            divergence *= 1.3
        kernel_s = max(compute_s + int_s, memory_s) * divergence

        # dynamic calls from inside the kernel (function-call heavy kernels):
        # cheap on the CPU, expensive on the GPU and growing with input size
        call_s = summary.calls * dev.call_overhead_us * 1e-6 / max(
            1.0, summary.parallel_trip ** 0.25)

        total = transfer_s + launch_s + kernel_s + call_s
        if self.noise > 0:
            total *= float(np.exp(rng.normal(0.0, self.noise)))
        return OpenCLExecution(
            time_seconds=float(total),
            breakdown={"transfer": transfer_s, "launch": launch_s,
                       "kernel": kernel_s, "calls": call_s,
                       "occupancy": occupancy},
            device=dev.name,
        )


def simulate_opencl(workload: Union[KernelSpec, WorkloadSummary],
                    device: GPUDevice, transfer_bytes: float, wgsize: int,
                    scale: float = 1.0, noise: float = 0.02,
                    seed: Optional[int] = None) -> OpenCLExecution:
    """One-shot convenience wrapper around :class:`OpenCLSimulator`."""
    sim = OpenCLSimulator(device, noise=noise, seed=seed)
    return sim.run(workload, transfer_bytes, wgsize, scale=scale)
