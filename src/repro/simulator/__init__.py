"""Analytic performance simulator (the reproduction's "hardware").

The paper measures execution times and PAPI counters on physical Comet Lake /
Skylake / Broadwell / Sandy Bridge CPUs and on an OpenCL CPU+GPU testbed.
This package replaces that hardware with a mechanistic analytic model:

* :mod:`microarch` — CPU micro-architecture and GPU device models,
* :mod:`cache` — multi-level cache behaviour of a workload summary,
* :mod:`openmp` — execution time + counters of an OpenMP loop under a given
  (threads, schedule, chunk) configuration,
* :mod:`opencl` — execution time of an OpenCL kernel on a CPU or GPU device.

Because times and counters come from one consistent model, the statistical
structure the MGA tuner must learn (code structure + counters → best
configuration) is present in the generated datasets just as it is in the
paper's measurements.
"""

from repro.simulator.microarch import (
    BROADWELL_8C,
    COMET_LAKE_8C,
    CORE_I7_3820,
    GTX_970,
    MicroArch,
    GPUDevice,
    SANDY_BRIDGE_8C,
    SKYLAKE_4114,
    TAHITI_7970,
    get_microarch,
)
from repro.simulator.cache import CacheTraffic, estimate_cache_traffic
from repro.simulator.openmp import ExecutionResult, OpenMPSimulator, simulate_openmp
from repro.simulator.opencl import DeviceKind, OpenCLSimulator, simulate_opencl

__all__ = [
    "MicroArch",
    "GPUDevice",
    "COMET_LAKE_8C",
    "SKYLAKE_4114",
    "BROADWELL_8C",
    "SANDY_BRIDGE_8C",
    "CORE_I7_3820",
    "TAHITI_7970",
    "GTX_970",
    "get_microarch",
    "CacheTraffic",
    "estimate_cache_traffic",
    "ExecutionResult",
    "OpenMPSimulator",
    "simulate_openmp",
    "DeviceKind",
    "OpenCLSimulator",
    "simulate_opencl",
]
