"""Machine models: CPU micro-architectures and OpenCL devices.

The presets correspond to the systems used in the paper:

* Intel i7-10700K (Comet Lake, 8 cores) — §4.1.3 thread prediction,
* Intel Xeon Silver 4114 (Skylake-SP, 10 cores / 20 threads) — §4.1.4,
* Broadwell and Sandy Bridge 8-core CloudLab nodes — §4.1.5 portability,
* Intel i7-3820 + AMD Tahiti 7970 + NVIDIA GTX 970 — §4.2 device mapping.

Numbers are nominal datasheet values; the simulator only relies on their
relative magnitudes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class MicroArch:
    """A multicore CPU model."""

    name: str
    cores: int
    smt: int                      # hardware threads per core
    freq_ghz: float
    flops_per_cycle: float        # per core (vector FMA throughput)
    l1_kb: float                  # per core
    l2_kb: float                  # per core
    l3_mb: float                  # shared
    line_bytes: int
    mem_bw_gbs: float
    mem_latency_ns: float
    l2_latency_ns: float
    l3_latency_ns: float
    fork_overhead_us: float       # omp parallel region entry+exit
    sched_overhead_us: float      # cost of dispatching one dynamic chunk
    branch_penalty_ns: float      # misprediction penalty
    smt_efficiency: float = 0.30  # extra throughput of the 2nd hw thread

    @property
    def max_threads(self) -> int:
        return self.cores * self.smt

    @property
    def l1_bytes(self) -> float:
        return self.l1_kb * 1024.0

    @property
    def l2_bytes(self) -> float:
        return self.l2_kb * 1024.0

    @property
    def l3_bytes(self) -> float:
        return self.l3_mb * 1024.0 * 1024.0

    def peak_gflops(self, threads: int) -> float:
        """Aggregate peak GFLOP/s with ``threads`` software threads."""
        threads = max(1, min(threads, self.max_threads))
        full_cores = min(threads, self.cores)
        extra = max(0, threads - self.cores)
        effective_cores = full_cores + self.smt_efficiency * extra
        return effective_cores * self.freq_ghz * self.flops_per_cycle

    def effective_mem_bw(self, threads: int) -> float:
        """Achievable DRAM bandwidth (GB/s): a single core cannot saturate the
        memory controller; bandwidth ramps up with threads then saturates."""
        threads = max(1, min(threads, self.max_threads))
        single_core_bw = self.mem_bw_gbs * 0.35
        ramp = min(1.0, 0.35 + 0.18 * (threads - 1))
        return self.mem_bw_gbs * ramp if threads > 1 else single_core_bw


@dataclasses.dataclass(frozen=True)
class GPUDevice:
    """An OpenCL accelerator (or CPU-as-OpenCL-device) model."""

    name: str
    kind: str                     # "cpu" | "gpu"
    peak_gflops: float
    mem_bw_gbs: float
    pcie_bw_gbs: float            # host<->device transfer bandwidth
    launch_overhead_us: float
    random_access_penalty: float  # slowdown factor for irregular access
    divergence_penalty: float     # slowdown factor per branchy work-item
    preferred_wgsize: int
    call_overhead_us: float = 0.0  # per dynamic call from within a kernel


# ----------------------------------------------------------------------
# CPU presets (§4.1)
# ----------------------------------------------------------------------
COMET_LAKE_8C = MicroArch(
    name="comet_lake", cores=8, smt=1, freq_ghz=4.7, flops_per_cycle=16.0,
    l1_kb=32, l2_kb=256, l3_mb=16.0, line_bytes=64, mem_bw_gbs=45.0,
    mem_latency_ns=70.0, l2_latency_ns=4.0, l3_latency_ns=12.0,
    fork_overhead_us=6.0, sched_overhead_us=0.35, branch_penalty_ns=3.5,
)

SKYLAKE_4114 = MicroArch(
    name="skylake_4114", cores=10, smt=2, freq_ghz=2.2, flops_per_cycle=32.0,
    l1_kb=32, l2_kb=1024, l3_mb=13.75, line_bytes=64, mem_bw_gbs=60.0,
    mem_latency_ns=85.0, l2_latency_ns=6.0, l3_latency_ns=18.0,
    fork_overhead_us=8.0, sched_overhead_us=0.45, branch_penalty_ns=6.0,
)

BROADWELL_8C = MicroArch(
    name="broadwell", cores=8, smt=1, freq_ghz=3.2, flops_per_cycle=16.0,
    l1_kb=32, l2_kb=256, l3_mb=20.0, line_bytes=64, mem_bw_gbs=50.0,
    mem_latency_ns=80.0, l2_latency_ns=4.5, l3_latency_ns=14.0,
    fork_overhead_us=7.0, sched_overhead_us=0.40, branch_penalty_ns=4.5,
)

SANDY_BRIDGE_8C = MicroArch(
    name="sandy_bridge", cores=8, smt=1, freq_ghz=2.6, flops_per_cycle=8.0,
    l1_kb=32, l2_kb=256, l3_mb=20.0, line_bytes=64, mem_bw_gbs=35.0,
    mem_latency_ns=95.0, l2_latency_ns=5.0, l3_latency_ns=16.0,
    fork_overhead_us=9.0, sched_overhead_us=0.50, branch_penalty_ns=5.5,
)

_MICROARCHS: Dict[str, MicroArch] = {
    m.name: m for m in (COMET_LAKE_8C, SKYLAKE_4114, BROADWELL_8C,
                        SANDY_BRIDGE_8C)
}


def get_microarch(name: str) -> MicroArch:
    """Look up a CPU preset by name."""
    try:
        return _MICROARCHS[name]
    except KeyError as exc:
        raise KeyError(f"unknown micro-architecture {name!r}; "
                       f"known: {sorted(_MICROARCHS)}") from exc


def microarch_to_config(arch: MicroArch) -> Dict:
    """JSON-serialisable form of any :class:`MicroArch` (preset or custom)."""
    return dataclasses.asdict(arch)


def microarch_from_config(config) -> MicroArch:
    """Rebuild a :class:`MicroArch` from a preset name or a full field dict."""
    if isinstance(config, str):
        return get_microarch(config)
    if isinstance(config, MicroArch):
        return config
    return MicroArch(**config)


# ----------------------------------------------------------------------
# OpenCL devices (§4.2)
# ----------------------------------------------------------------------
CORE_I7_3820 = GPUDevice(
    name="intel_i7_3820", kind="cpu", peak_gflops=58.0, mem_bw_gbs=26.0,
    pcie_bw_gbs=1e9, launch_overhead_us=2.0, random_access_penalty=2.0,
    divergence_penalty=1.05, preferred_wgsize=8, call_overhead_us=0.02,
)

TAHITI_7970 = GPUDevice(
    name="amd_tahiti_7970", kind="gpu", peak_gflops=3789.0, mem_bw_gbs=264.0,
    pcie_bw_gbs=6.0, launch_overhead_us=35.0, random_access_penalty=4.0,
    divergence_penalty=1.9, preferred_wgsize=256, call_overhead_us=0.6,
)

GTX_970 = GPUDevice(
    name="nvidia_gtx_970", kind="gpu", peak_gflops=3494.0, mem_bw_gbs=196.0,
    pcie_bw_gbs=6.0, launch_overhead_us=28.0, random_access_penalty=3.5,
    divergence_penalty=1.8, preferred_wgsize=256, call_overhead_us=0.5,
)

_GPU_DEVICES: Dict[str, GPUDevice] = {
    d.name: d for d in (CORE_I7_3820, TAHITI_7970, GTX_970)
}


def get_gpu_device(name: str) -> GPUDevice:
    """Look up an OpenCL device preset by name."""
    try:
        return _GPU_DEVICES[name]
    except KeyError as exc:
        raise KeyError(f"unknown OpenCL device {name!r}; "
                       f"known: {sorted(_GPU_DEVICES)}") from exc


def gpu_from_config(config) -> GPUDevice:
    """Rebuild a :class:`GPUDevice` from a preset name or a full field dict."""
    if isinstance(config, str):
        return get_gpu_device(config)
    if isinstance(config, GPUDevice):
        return config
    return GPUDevice(**config)
