"""Static gate: no direct numpy imports behind the array-backend seam.

Every array operation inside ``repro.nn`` and ``repro.gnn`` must route
through ``repro.nn.backend.xp`` so that switching the active backend
(numpy / checked / cupy / torch) actually switches *all* the math.  A
stray ``import numpy`` in one of those modules silently pins that code to
the host CPU and breaks the checked backend's accounting, so CI fails on
it here rather than in a device-parity test months later.

The check is AST-based (not grep): it flags ``import numpy`` /
``import numpy as anything`` / ``from numpy import ...`` /
``from numpy.random import ...`` wherever they appear in a module,
including inside functions.  Mentions of numpy in strings, comments or
docstrings are fine.

Allowlisted:

* ``repro/nn/backend.py`` — the one module whose job is to bind numpy.

Run from the repository root (CI does)::

    python tools/check_backend_seam.py

Exit status 0 when clean, 1 with a per-violation listing otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: directories whose modules must not import numpy directly
SEALED_DIRS = ("src/repro/nn", "src/repro/gnn")

#: modules allowed to import numpy, relative to the repository root.
#: Keep this list short and deliberate: every entry is a hole in the seam.
ALLOWLIST = frozenset({
    "src/repro/nn/backend.py",
})


def find_numpy_imports(path: Path) -> list:
    """``(line, text)`` for every direct numpy import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "numpy":
                    violations.append(
                        (node.lineno, f"import {alias.name}"
                         + (f" as {alias.asname}" if alias.asname else "")))
        elif isinstance(node, ast.ImportFrom):
            # level > 0 is a relative import and can never reach numpy
            if node.level == 0 and node.module \
                    and node.module.split(".")[0] == "numpy":
                names = ", ".join(a.name for a in node.names)
                violations.append(
                    (node.lineno, f"from {node.module} import {names}"))
    return violations


def main(root: Path) -> int:
    failures = []
    checked = 0
    for sealed in SEALED_DIRS:
        base = root / sealed
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWLIST:
                continue
            checked += 1
            for lineno, text in find_numpy_imports(path):
                failures.append(f"{rel}:{lineno}: {text}")
    if failures:
        print("direct numpy imports behind the backend seam "
              f"({len(failures)}):")
        for line in failures:
            print(f"  {line}")
        print("route array ops through repro.nn.backend.xp instead, or "
              "(deliberately) extend ALLOWLIST in tools/check_backend_seam.py")
        return 1
    print(f"backend seam clean: {checked} modules checked, "
          f"{len(ALLOWLIST)} allowlisted")
    return 0


if __name__ == "__main__":
    sys.exit(main(Path(__file__).resolve().parent.parent))
